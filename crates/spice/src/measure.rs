//! `.measure`-style post-processing of AC and transient results.
//!
//! These are the primitives the paper's testbenches are built from: gain,
//! unity-gain frequency, phase margin, 3 dB bandwidth, crossing delays,
//! oscillation frequency, and windowed averages (power).
//!
//! Every extraction returns `Result<_, MeasureError>`: malformed inputs
//! (mismatched waveform lengths, empty sweeps) and absent features (no
//! crossing, no oscillation) are typed errors, never panics or bare
//! `None`s — a candidate evaluation that cannot be measured must surface
//! a recoverable error to the flow's degradation machinery, not abort the
//! run.

use std::fmt;

use crate::analysis::ac::AcResult;
use crate::netlist::NodeId;

/// Edge direction for waveform crossing searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Crossing from below to above the level.
    Rising,
    /// Crossing from above to below the level.
    Falling,
    /// Either direction.
    Any,
}

/// A measurement that could not be extracted from a simulation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// Paired vectors (e.g. time and waveform) have different lengths.
    LengthMismatch {
        /// Which measurement found the mismatch.
        what: String,
        /// Length of the reference vector (usually time).
        expected: usize,
        /// Length of the offending vector.
        got: usize,
    },
    /// The AC sweep (or waveform) has no points to measure on.
    EmptySweep {
        /// Which measurement needed data.
        what: String,
    },
    /// The waveform never exhibits the feature looked for (a level
    /// crossing, an oscillation, a rolloff).
    NoCrossing {
        /// Which feature was absent.
        what: String,
    },
    /// The waveform is too short for the measurement.
    TooFewSamples {
        /// Which measurement ran short.
        what: String,
        /// Minimum sample count required.
        needed: usize,
        /// Samples actually available.
        got: usize,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: length mismatch ({expected} vs {got})"),
            MeasureError::EmptySweep { what } => write!(f, "{what}: empty sweep"),
            MeasureError::NoCrossing { what } => write!(f, "{what}"),
            MeasureError::TooFewSamples { what, needed, got } => {
                write!(f, "{what}: too few samples ({got} < {needed})")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

fn check_lengths(what: &str, times: &[f64], wave: &[f64]) -> Result<(), MeasureError> {
    if times.len() != wave.len() {
        return Err(MeasureError::LengthMismatch {
            what: what.to_string(),
            expected: times.len(),
            got: wave.len(),
        });
    }
    Ok(())
}

/// Converts a magnitude ratio to decibels (`20·log10`).
#[inline]
pub fn db(mag: f64) -> f64 {
    20.0 * mag.log10()
}

/// Magnitude of a node response at the sweep point nearest `freq`.
///
/// # Errors
///
/// [`MeasureError::EmptySweep`] when the AC result holds no points.
pub fn mag_near(ac: &AcResult, node: NodeId, freq: f64) -> Result<f64, MeasureError> {
    let idx = nearest_index(ac.frequencies(), freq).ok_or_else(|| MeasureError::EmptySweep {
        what: "magnitude near frequency".to_string(),
    })?;
    Ok(ac.phasor(node, idx).norm())
}

/// Low-frequency (first sweep point) gain magnitude of a node.
///
/// # Errors
///
/// [`MeasureError::EmptySweep`] when the AC result holds no points.
pub fn dc_gain(ac: &AcResult, node: NodeId) -> Result<f64, MeasureError> {
    if ac.frequencies().is_empty() {
        return Err(MeasureError::EmptySweep {
            what: "dc gain".to_string(),
        });
    }
    Ok(ac.phasor(node, 0).norm())
}

/// Unity-gain frequency: where `|H|` crosses 1.0 from above.
///
/// Log-interpolates between the bracketing sweep points.
///
/// # Errors
///
/// [`MeasureError::NoCrossing`] when the response never crosses unity
/// within the sweep.
pub fn unity_gain_freq(ac: &AcResult, node: NodeId) -> Result<f64, MeasureError> {
    crossing_freq(ac, node, 1.0).map_err(|_| MeasureError::NoCrossing {
        what: "no unity-gain crossing".to_string(),
    })
}

/// Frequency at which `|H|` falls to `1/√2` of its low-frequency value.
///
/// # Errors
///
/// [`MeasureError::NoCrossing`] when the response never rolls off within
/// the sweep, [`MeasureError::EmptySweep`] on an empty result.
pub fn bw_3db(ac: &AcResult, node: NodeId) -> Result<f64, MeasureError> {
    let level = dc_gain(ac, node)? / std::f64::consts::SQRT_2;
    crossing_freq(ac, node, level).map_err(|e| match e {
        MeasureError::NoCrossing { .. } => MeasureError::NoCrossing {
            what: "no 3 dB rolloff".to_string(),
        },
        other => other,
    })
}

/// Finds where the magnitude response falls through `level` (from above).
///
/// # Errors
///
/// [`MeasureError::NoCrossing`] when the response never falls through
/// `level` within the sweep.
pub fn crossing_freq(ac: &AcResult, node: NodeId, level: f64) -> Result<f64, MeasureError> {
    let f = ac.frequencies();
    let mags = ac.magnitude(node);
    for i in 1..mags.len() {
        if mags[i - 1] >= level && mags[i] < level {
            // Log-log interpolation for smoothness on decade sweeps.
            let (m0, m1) = (mags[i - 1].max(1e-300), mags[i].max(1e-300));
            let (f0, f1) = (f[i - 1], f[i]);
            let t = (level.ln() - m0.ln()) / (m1.ln() - m0.ln());
            return Ok((f0.ln() + t * (f1.ln() - f0.ln())).exp());
        }
    }
    Err(MeasureError::NoCrossing {
        what: format!("magnitude never falls through {level:.3e}"),
    })
}

/// Phase margin in degrees: `180° + ∠H(jω_u)` at the unity-gain frequency.
///
/// # Errors
///
/// [`MeasureError::NoCrossing`] when there is no unity crossing in the
/// sweep (the phase margin is then undefined).
pub fn phase_margin_deg(ac: &AcResult, node: NodeId) -> Result<f64, MeasureError> {
    let fu = unity_gain_freq(ac, node).map_err(|_| MeasureError::NoCrossing {
        what: "no phase margin (no unity-gain crossing)".to_string(),
    })?;
    let idx = nearest_index(ac.frequencies(), fu).ok_or_else(|| MeasureError::EmptySweep {
        what: "phase margin".to_string(),
    })?;
    // Unwrap the phase from the start of the sweep so that the value at the
    // crossing is continuous (arg() alone wraps at ±π).
    let mut phase = 0.0;
    let mut last = ac.phasor(node, 0).arg();
    let mut acc = last;
    for i in 1..=idx {
        let p = ac.phasor(node, i).arg();
        let mut d = p - last;
        while d > std::f64::consts::PI {
            d -= 2.0 * std::f64::consts::PI;
        }
        while d < -std::f64::consts::PI {
            d += 2.0 * std::f64::consts::PI;
        }
        acc += d;
        last = p;
        phase = acc;
    }
    if idx == 0 {
        phase = ac.phasor(node, 0).arg();
    }
    Ok(180.0 + phase.to_degrees())
}

/// Time of the `nth` (1-based) crossing of `level` in the given direction,
/// with linear interpolation between samples.
///
/// # Errors
///
/// [`MeasureError::LengthMismatch`] when `times` and `wave` differ in
/// length; [`MeasureError::NoCrossing`] when fewer than `nth` crossings
/// exist.
pub fn cross_time(
    times: &[f64],
    wave: &[f64],
    level: f64,
    edge: Edge,
    nth: usize,
) -> Result<f64, MeasureError> {
    check_lengths("crossing time", times, wave)?;
    let mut count = 0;
    for i in 1..wave.len() {
        let (a, b) = (wave[i - 1], wave[i]);
        let hit = match edge {
            Edge::Rising => a < level && b >= level,
            Edge::Falling => a > level && b <= level,
            Edge::Any => (a < level && b >= level) || (a > level && b <= level),
        };
        if hit {
            count += 1;
            if count == nth {
                let frac = if (b - a).abs() > 0.0 {
                    (level - a) / (b - a)
                } else {
                    0.0
                };
                return Ok(times[i - 1] + frac * (times[i] - times[i - 1]));
            }
        }
    }
    Err(MeasureError::NoCrossing {
        what: format!("crossing #{nth} of level {level:.4} not found"),
    })
}

/// Delay between a crossing on a trigger waveform and a crossing on a target
/// waveform (both 1-based nth crossings).
///
/// # Errors
///
/// [`MeasureError::LengthMismatch`] when waveform lengths differ from the
/// time vector; [`MeasureError::NoCrossing`] when either crossing is
/// absent.
#[allow(clippy::too_many_arguments)]
pub fn delay(
    times: &[f64],
    trig: &[f64],
    trig_level: f64,
    trig_edge: Edge,
    trig_nth: usize,
    targ: &[f64],
    targ_level: f64,
    targ_edge: Edge,
) -> Result<f64, MeasureError> {
    check_lengths("delay target", times, targ)?;
    let t0 = cross_time(times, trig, trig_level, trig_edge, trig_nth)?;
    // First target crossing at or after the trigger.
    let mut count = 0;
    for i in 1..targ.len() {
        if times[i] < t0 {
            continue;
        }
        let (a, b) = (targ[i - 1], targ[i]);
        let hit = match targ_edge {
            Edge::Rising => a < targ_level && b >= targ_level,
            Edge::Falling => a > targ_level && b <= targ_level,
            Edge::Any => (a < targ_level && b >= targ_level) || (a > targ_level && b <= targ_level),
        };
        if hit {
            count += 1;
            if count == 1 {
                let frac = if (b - a).abs() > 0.0 {
                    (targ_level - a) / (b - a)
                } else {
                    0.0
                };
                let t1 = times[i - 1] + frac * (times[i] - times[i - 1]);
                return Ok(t1 - t0);
            }
        }
    }
    Err(MeasureError::NoCrossing {
        what: format!("target never crosses {targ_level:.4} after trigger"),
    })
}

/// Oscillation frequency from the median period between rising crossings of
/// the waveform mean, using the last `periods_to_use` periods (settled
/// behavior).
///
/// # Errors
///
/// [`MeasureError::TooFewSamples`] for waveforms under four samples,
/// [`MeasureError::LengthMismatch`] for unequal vectors, and
/// [`MeasureError::NoCrossing`] when the waveform does not oscillate
/// (fewer than two level crossings, or a non-positive median period).
pub fn osc_frequency(
    times: &[f64],
    wave: &[f64],
    periods_to_use: usize,
) -> Result<f64, MeasureError> {
    check_lengths("oscillation frequency", times, wave)?;
    if wave.len() < 4 {
        return Err(MeasureError::TooFewSamples {
            what: "oscillation frequency".to_string(),
            needed: 4,
            got: wave.len(),
        });
    }
    // Use the mean of the second half as the crossing level: the first half
    // may contain the start-up transient.
    let half = wave.len() / 2;
    let level = wave[half..].iter().sum::<f64>() / (wave.len() - half) as f64;
    let mut crossings = Vec::new();
    for i in 1..wave.len() {
        if wave[i - 1] < level && wave[i] >= level {
            let frac = (level - wave[i - 1]) / (wave[i] - wave[i - 1]);
            crossings.push(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    if crossings.len() < 2 {
        return Err(MeasureError::NoCrossing {
            what: "no oscillation (fewer than two mean crossings)".to_string(),
        });
    }
    let mut periods: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
    let keep = periods_to_use.max(1).min(periods.len());
    let tail = periods.split_off(periods.len() - keep);
    let mut tail = tail;
    tail.sort_by(|a, b| a.total_cmp(b));
    let median = tail[tail.len() / 2];
    if median > 0.0 {
        Ok(1.0 / median)
    } else {
        Err(MeasureError::NoCrossing {
            what: "no oscillation (non-positive median period)".to_string(),
        })
    }
}

/// Average of a waveform over `[t_start, t_end]` using trapezoidal weights.
/// An empty overlap between the window and the data averages to zero.
///
/// # Errors
///
/// [`MeasureError::LengthMismatch`] when `times` and `wave` differ in
/// length.
pub fn average(times: &[f64], wave: &[f64], t_start: f64, t_end: f64) -> Result<f64, MeasureError> {
    check_lengths("windowed average", times, wave)?;
    let mut area = 0.0;
    let mut span = 0.0;
    for i in 1..times.len() {
        let (t0, t1) = (times[i - 1], times[i]);
        if t1 < t_start || t0 > t_end {
            continue;
        }
        let a = t0.max(t_start);
        let b = t1.min(t_end);
        if b <= a {
            continue;
        }
        // Linear interior interpolation.
        let v = |t: f64| wave[i - 1] + (wave[i] - wave[i - 1]) * (t - t0) / (t1 - t0);
        area += 0.5 * (v(a) + v(b)) * (b - a);
        span += b - a;
    }
    if span > 0.0 {
        Ok(area / span)
    } else {
        Ok(0.0)
    }
}

/// Peak-to-peak swing over the second half of a waveform (settled region).
///
/// # Errors
///
/// [`MeasureError::TooFewSamples`] for waveforms under two samples (a
/// swing needs at least two points).
pub fn settled_peak_to_peak(wave: &[f64]) -> Result<f64, MeasureError> {
    if wave.len() < 2 {
        return Err(MeasureError::TooFewSamples {
            what: "settled peak-to-peak".to_string(),
            needed: 2,
            got: wave.len(),
        });
    }
    let half = wave.len() / 2;
    let tail = &wave[half..];
    let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    Ok(max - min)
}

/// Index of the sweep point nearest `f` (log distance); `None` on an
/// empty sweep.
fn nearest_index(freqs: &[f64], f: f64) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_d = f64::INFINITY;
    for (i, &fi) in freqs.iter().enumerate() {
        let d = (fi.ln() - f.ln()).abs();
        if d < best_d {
            best_d = d;
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::{AcSolver, FrequencySweep};
    use crate::netlist::Circuit;

    fn rc_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", vin, out, 1e3).unwrap();
        c.capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
        (c, out)
    }

    #[test]
    fn bw_3db_of_rc() {
        let (c, out) = rc_circuit();
        let res = AcSolver::new()
            .solve(
                &c,
                &FrequencySweep::Decade {
                    start: 1e3,
                    stop: 1e8,
                    points_per_decade: 40,
                },
            )
            .unwrap();
        let f3 = bw_3db(&res, out).unwrap();
        let expect = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        assert!((f3 - expect).abs() / expect < 0.02, "f3db {f3} vs {expect}");
    }

    #[test]
    fn gain_with_vcvs_and_ugf() {
        // VCVS gain 100 into an RC pole: UGF = 100 × f3dB approximately.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let amp = c.node("amp");
        let out = c.node("out");
        c.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        c.vcvs("E1", amp, Circuit::GROUND, vin, Circuit::GROUND, 100.0);
        c.resistor("R1", amp, out, 1e3).unwrap();
        c.capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
        let res = AcSolver::new()
            .solve(
                &c,
                &FrequencySweep::Decade {
                    start: 1e3,
                    stop: 1e9,
                    points_per_decade: 40,
                },
            )
            .unwrap();
        assert!((dc_gain(&res, out).unwrap() - 100.0).abs() < 0.1);
        assert!((db(dc_gain(&res, out).unwrap()) - 40.0).abs() < 0.1);
        let fu = unity_gain_freq(&res, out).unwrap();
        let f3 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        // Single pole: fu ≈ gain·f3 when far above the pole.
        assert!((fu / (100.0 * f3) - 1.0).abs() < 0.05, "fu {fu}");
        // Phase margin of a single-pole system ≈ 90°.
        let pm = phase_margin_deg(&res, out).unwrap();
        assert!((pm - 90.0).abs() < 3.0, "pm {pm}");
    }

    #[test]
    fn phase_margin_two_pole_system() {
        // Gain 1000 through two RC poles at 1 MHz and 100 MHz: at the unity
        // crossing the phase has fallen well past −90°, so PM < 90°.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let a = c.node("a");
        let b = c.node("b");
        let out = c.node("out");
        c.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        c.vcvs("E1", a, Circuit::GROUND, vin, Circuit::GROUND, 1000.0);
        c.resistor("R1", a, b, 1e3).unwrap();
        c.capacitor("C1", b, Circuit::GROUND, 159.15e-12).unwrap(); // 1 MHz
        let buf = c.node("buf");
        c.vcvs("E2", buf, Circuit::GROUND, b, Circuit::GROUND, 1.0);
        c.resistor("R2", buf, out, 1e3).unwrap();
        c.capacitor("C2", out, Circuit::GROUND, 1.5915e-12).unwrap(); // 100 MHz
        let res = AcSolver::new()
            .solve(
                &c,
                &FrequencySweep::Decade {
                    start: 1e4,
                    stop: 10e9,
                    points_per_decade: 40,
                },
            )
            .unwrap();
        let pm = phase_margin_deg(&res, out).unwrap();
        // fu ≈ 1 GHz… second pole at 100 MHz contributes ≈ −84°; expect a
        // small positive margin well below the single-pole 90°.
        assert!(pm < 45.0, "pm {pm}");
        assert!(pm > -30.0, "pm {pm}");
    }

    #[test]
    fn crossing_freq_error_when_always_below() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.vsource_ac("V1", vin, Circuit::GROUND, 0.0, 1.0);
        // Divider: response is 0.5 everywhere, never crossing 0.1 downward
        // from above 1.0.
        c.resistor("R1", vin, out, 1e3).unwrap();
        c.resistor("R2", out, Circuit::GROUND, 1e3).unwrap();
        let res = AcSolver::new()
            .solve(
                &c,
                &FrequencySweep::Decade {
                    start: 1e3,
                    stop: 1e6,
                    points_per_decade: 5,
                },
            )
            .unwrap();
        assert!(matches!(
            unity_gain_freq(&res, out),
            Err(MeasureError::NoCrossing { .. })
        ));
        assert!(matches!(
            phase_margin_deg(&res, out),
            Err(MeasureError::NoCrossing { .. })
        ));
    }

    #[test]
    fn cross_time_interpolates() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let w = [0.0, 1.0, 0.0, 1.0];
        let c1 = cross_time(&t, &w, 0.5, Edge::Rising, 1).unwrap();
        assert!((c1 - 0.5).abs() < 1e-12);
        let c2 = cross_time(&t, &w, 0.5, Edge::Rising, 2).unwrap();
        assert!((c2 - 2.5).abs() < 1e-12);
        let cf = cross_time(&t, &w, 0.5, Edge::Falling, 1).unwrap();
        assert!((cf - 1.5).abs() < 1e-12);
        assert!(matches!(
            cross_time(&t, &w, 0.5, Edge::Rising, 3),
            Err(MeasureError::NoCrossing { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_are_typed_errors() {
        let t = [0.0, 1.0, 2.0];
        let w = [0.0, 1.0];
        assert!(matches!(
            cross_time(&t, &w, 0.5, Edge::Rising, 1),
            Err(MeasureError::LengthMismatch { .. })
        ));
        assert!(matches!(
            average(&t, &w, 0.0, 2.0),
            Err(MeasureError::LengthMismatch { .. })
        ));
        assert!(matches!(
            osc_frequency(&t, &w, 3),
            Err(MeasureError::LengthMismatch { .. })
        ));
        assert!(matches!(
            delay(&t, &w, 0.5, Edge::Rising, 1, &w, 0.5, Edge::Rising),
            Err(MeasureError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn short_waveforms_are_typed_errors() {
        assert!(matches!(
            settled_peak_to_peak(&[1.0]),
            Err(MeasureError::TooFewSamples { .. })
        ));
        assert!(matches!(
            osc_frequency(&[0.0, 1.0], &[0.0, 1.0], 3),
            Err(MeasureError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn delay_between_waveforms() {
        let t: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let trig: Vec<f64> = t.iter().map(|&x| if x > 2.0 { 1.0 } else { 0.0 }).collect();
        let targ: Vec<f64> = t.iter().map(|&x| if x > 5.0 { 1.0 } else { 0.0 }).collect();
        let d = delay(&t, &trig, 0.5, Edge::Rising, 1, &targ, 0.5, Edge::Rising).unwrap();
        assert!((d - 3.0).abs() < 0.11, "delay {d}");
    }

    #[test]
    fn osc_frequency_of_sine() {
        let f = 2.5e9;
        let t: Vec<f64> = (0..4000).map(|i| i as f64 * 1e-12).collect();
        let w: Vec<f64> = t
            .iter()
            .map(|&x| 0.4 + 0.3 * (2.0 * std::f64::consts::PI * f * x).sin())
            .collect();
        let est = osc_frequency(&t, &w, 4).unwrap();
        assert!((est - f).abs() / f < 0.01, "freq {est}");
    }

    #[test]
    fn flat_waveform_does_not_oscillate() {
        let t: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let w = vec![0.5; 16];
        assert!(matches!(
            osc_frequency(&t, &w, 4),
            Err(MeasureError::NoCrossing { .. })
        ));
    }

    #[test]
    fn average_windows_correctly() {
        let t = [0.0, 1.0, 2.0, 3.0, 4.0];
        let w = [0.0, 1.0, 1.0, 1.0, 0.0];
        // Average over [1, 3] is exactly 1.
        assert!((average(&t, &w, 1.0, 3.0).unwrap() - 1.0).abs() < 1e-12);
        // Average over the whole ramp-up-down: area = 0.5+1+1+0.5 = 3 over 4.
        assert!((average(&t, &w, 0.0, 4.0).unwrap() - 0.75).abs() < 1e-12);
        // A window outside the data averages to zero, not an error.
        assert_eq!(average(&t, &w, 10.0, 11.0).unwrap(), 0.0);
    }

    #[test]
    fn settled_peak_to_peak_ignores_startup() {
        let mut w = vec![10.0; 10];
        w.extend(vec![0.5, 1.5, 0.5, 1.5, 0.5, 1.5, 0.5, 1.5, 0.5, 1.5]);
        assert!((settled_peak_to_peak(&w).unwrap() - 1.0).abs() < 1e-12);
    }
}
