//! The three evaluated layout flows (§IV): this work's optimized flow, the
//! conventional geometry-only baseline, and a manual-layout proxy.
//!
//! All flows share the placement and global-routing substrates and the same
//! manually-routed supply (IR drop included), differing exactly where the
//! paper differs: whether primitive layouts and port wire widths are chosen
//! by performance optimization or by defaults.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prima_cache::{CacheEventKind, CachePolicy, CacheStats, EvalCache, Fingerprintable};
use prima_core::{
    clamp_to_em_floor, reconcile, route_wire, BinRanked, CancelToken, EvalLedger, Evaluated,
    FaultInjector, FaultPlan, GlobalRoute, NoFaults, Optimizer, Phase, PortConstraint,
    RepairBudgets, RepairCursor, ResilienceReport, RuleKind, Severity, SolverLimits, Violation,
};
use prima_corners::{CornerPolicy, CornerReport};
use prima_geom::Point;
use prima_layout::{generate, render, CellConfig, PlacementPattern, PrimitiveLayout};
use prima_pdk::Technology;
use prima_place::{Block, Net, PlacementProblem, Placer};
use prima_primitives::{Bias, Library, PrimitiveDef, TESTBENCH_VERSION};
use prima_route::detail::{DetailError, DetailRouter, DetailedResult};
use prima_route::power::{synthesize, PowerGridSpec, PowerReport};
use prima_route::{GlobalRouter, NetRoute, RoutingProblem, RoutingResult};
use prima_verify::lints::{LintInputs, PortInterval};
use prima_verify::{check_flow, CellArtifact, FlowArtifacts, VerifyReport};
use serde::{Deserialize, Serialize};

use crate::builder::Realization;
use crate::circuits::CircuitSpec;
use crate::electrical::{self, ErcBuild};
use crate::preflight;
use crate::FlowError;

/// Which flow produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowKind {
    /// This work: primitive selection → tuning → place/route → port
    /// optimization.
    Optimized,
    /// Geometry-only baseline: default cells, single wires, no parasitic or
    /// LDE optimization.
    Conventional,
    /// Manual-layout proxy: the optimized flow with an extended search
    /// budget (see DESIGN.md for the substitution argument).
    Manual,
}

/// When the static verification gate (prima-verify) runs after a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VerifyPolicy {
    /// Verify in debug builds (the default for tests); skip in release so
    /// benchmarking measures the flow alone. Opt in with [`VerifyPolicy::On`].
    #[default]
    Auto,
    /// Always verify; any violation fails the flow.
    On,
    /// Never verify.
    Off,
}

impl VerifyPolicy {
    /// Whether the gate runs under this policy in the current build.
    pub fn enabled(self) -> bool {
        match self {
            VerifyPolicy::Auto => cfg!(debug_assertions),
            VerifyPolicy::On => true,
            VerifyPolicy::Off => false,
        }
    }
}

/// Whether the flow streams the finished layout out as a binary GDS-II
/// library (prima-gds) and attaches it to the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GdsPolicy {
    /// No stream-out (the default): the flow is bit-identical to a build
    /// without the GDS subsystem.
    #[default]
    Off,
    /// Stream out after the gates pass; a mapping or range failure aborts
    /// the flow with [`FlowError::Gds`].
    On,
}

impl GdsPolicy {
    /// Whether stream-out runs under this policy.
    pub fn enabled(self) -> bool {
        matches!(self, GdsPolicy::On)
    }
}

/// Switches for ablating individual steps of the optimized flow.
///
/// Not `Copy`: [`CachePolicy::Persistent`] carries a path.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// Run Algorithm 1 step 2 (parallel-wire tuning of selected layouts).
    pub tuning: bool,
    /// Run Algorithm 2 (port-constraint generation + reconciliation);
    /// disabled, every route keeps a single wire.
    pub port_optimization: bool,
    /// Static DRC/LVS/lint gate policy.
    pub verify: VerifyPolicy,
    /// Content-addressed evaluation caching (prima-cache). Off by default:
    /// cached runs produce bit-identical layouts but different simulation
    /// counts, and the counts are part of the paper's exhibits.
    pub cache: CachePolicy,
    /// Iteration/strategy bounds for the nonlinear solvers. The default
    /// reproduces the historical hard-coded limits bit for bit;
    /// [`SolverLimits::strict`] trades convergence attempts for bounded
    /// worst-case solve time (deadline-sensitive serving).
    pub solver: SolverLimits,
    /// Wall-clock budget for the whole flow, measured from entry. Checked
    /// cooperatively — at candidate, Newton-iteration, route, and stage
    /// boundaries — so an expired run unwinds with [`FlowError::Cancelled`]
    /// shortly after the deadline, never mid-structure.
    pub deadline: Option<Duration>,
    /// Externally-owned cancellation handle. When both a token and a
    /// `deadline` are given, the token's deadline is tightened to whichever
    /// is earlier (visible to every clone of the token).
    pub cancel: Option<CancelToken>,
    /// PVT corner / Monte-Carlo mismatch evaluation of surviving
    /// candidates. Off by default: a zero-corner run takes exactly the
    /// nominal-only path and is bit-identical to it.
    pub corners: CornerPolicy,
    /// Binary GDS-II stream-out of the finished layout (prima-gds). Off
    /// by default; when on, the outcome carries a [`prima_gds::GdsArtifact`]
    /// whose bytes re-parse to a geometrically exact copy.
    pub gds: GdsPolicy,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            tuning: true,
            port_optimization: true,
            verify: VerifyPolicy::default(),
            cache: CachePolicy::Off,
            solver: SolverLimits::default(),
            deadline: None,
            cancel: None,
            corners: CornerPolicy::Off,
            gds: GdsPolicy::Off,
        }
    }
}

/// Result of running a flow on a circuit.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Which flow ran.
    pub kind: FlowKind,
    /// The physical realization (layouts + net wires + supply IR).
    pub realization: Realization,
    /// Wall-clock runtime of the flow (Table VIII).
    pub runtime: Duration,
    /// Simulation counts per optimization phase (Table V).
    pub sims: HashMap<&'static str, usize>,
    /// Placement bounding-box area (µm²).
    pub area_um2: f64,
    /// Total global-route wirelength (µm).
    pub wirelength_um: f64,
    /// Detailed-routing track assignment (consumes the reconciled
    /// parallel-route widths, per the paper's hand-off to the detailed
    /// router).
    pub detailed: DetailedResult,
    /// Technology/library lint report (prima-techlint: deck
    /// self-consistency plus library feasibility on this deck), run under
    /// the verify policy before *everything* — the zeroth gate of the
    /// techlint → schem → layout → verify → erc chain. A populated report
    /// is always passing — a broken deck aborts the flow with
    /// [`FlowError::Verify`] carrying the exact `TECH.*`/`LIB.*` rule id.
    pub techlint: Option<VerifyReport>,
    /// Schematic preflight report (prima-schem: connectivity-graph lints,
    /// bias/sizing legality, topology recognition), run under the verify
    /// policy *before* any layout or simulation. A populated report is
    /// always passing — a failing preflight aborts the flow with
    /// [`FlowError::Verify`] in microseconds, before the optimizer is
    /// constructed.
    pub schem: Option<VerifyReport>,
    /// Static verification report, when the gate ran (see
    /// [`FlowOptions::verify`]). A populated report here is always passing
    /// (no error-severity findings) — unrepairable errors abort the flow
    /// with [`FlowError::Verify`]; degraded-severity findings ride along.
    pub verify: Option<VerifyReport>,
    /// Electrical rule check report (prima-erc: EM, IR, symmetry,
    /// connectivity hygiene), run under the same policy right after the
    /// geometric gate. Like `verify`, a populated report is always passing.
    pub erc: Option<VerifyReport>,
    /// What the flow survived: candidate evaluations lost to faults or
    /// panics, routing retries, gate-driven candidate fallbacks, and the
    /// overall health verdict. [`Health::Clean`](prima_core::Health::Clean)
    /// means the flow took the same path a fault-free run would.
    pub resilience: ResilienceReport,
    /// Evaluation-cache counters, when caching was enabled (see
    /// [`FlowOptions::cache`]). Hits substitute stored metric values
    /// bit-for-bit and are excluded from `sims`.
    pub cache: Option<CacheStats>,
    /// Degraded-severity cache incidents (`CACHE.CORRUPT`,
    /// `CACHE.INVALIDATED`, `CACHE.IO`): disk-tier problems absorbed by
    /// cold-starting the affected entries. Also recorded as resilience
    /// degradations; never fatal.
    pub cache_diagnostics: Vec<Violation>,
    /// Variation results, when [`FlowOptions::corners`] enabled the sweep:
    /// per-corner measures and worst-case margins per instance, the
    /// Monte-Carlo yield estimate (seed recorded), and any `CORNER.*`
    /// degradations (also mirrored into `resilience`).
    pub corners: Option<CornerReport>,
    /// The streamed-out GDS-II library, when [`FlowOptions::gds`] enabled
    /// stream-out. Carries the serialized bytes plus the in-memory
    /// [`prima_gds::GdsLibrary`] they were written from, so callers can
    /// re-parse and diff without touching disk.
    pub gds: Option<prima_gds::GdsArtifact>,
}

/// Fallback supply-rail series resistance when the power grid cannot be
/// synthesized (no placed blocks).
pub const SUPPLY_R_OHM: f64 = 6.0;

/// Estimated supply current of one instance, from its bias record.
fn block_current(bias: Option<&Bias>) -> f64 {
    match bias {
        Some(b) => b.i("tail", b.i("ref", 150e-6)),
        None => 150e-6,
    }
}

/// Synthesizes the (manually-routed, in the paper's terms) power grid over
/// a placement and returns the effective rail resistance together with the
/// full grid report (strap rows and per-block feed drops feed the ERC
/// gate's IR and well-tap checks).
fn supply_grid(
    tech: &Technology,
    placement_blocks: &[(prima_geom::Rect, f64)],
    bbox: prima_geom::Rect,
) -> (f64, Option<PowerReport>) {
    if placement_blocks.is_empty() {
        return (SUPPLY_R_OHM, None);
    }
    let report = synthesize(tech, bbox, placement_blocks, &PowerGridSpec::for_tech(tech));
    let r = report.effective_r_ohm.clamp(0.05, 25.0);
    (r, Some(report))
}

/// Nets excluded from signal routing/port optimization (power is routed
/// manually, as in the paper).
pub(crate) fn is_power_net(net: &str) -> bool {
    matches!(net, "vdd" | "vssn" | "vdd_ext")
}

/// The configuration space explored for a primitive of `total_fins` — the
/// standard space the schematic preflight's `SCHEM.SIZE` rule validates
/// against, so an instance that reaches the optimizer always has at least
/// one candidate.
fn config_space(total_fins: u64) -> Vec<CellConfig> {
    prima_core::std_config_space(total_fins)
}

/// A deterministic "default" configuration for the conventional flow: the
/// blocked pattern whose cell is closest to square — geometric constraints
/// met (a layout tool always targets compact, near-square cells), but no
/// electrical evaluation of any kind.
fn default_config(
    tech: &Technology,
    spec: &prima_layout::PrimitiveSpec,
    total_fins: u64,
) -> Option<CellConfig> {
    let mut configs = config_space(total_fins);
    configs.retain(|c| c.pattern == PlacementPattern::Aabb);
    // Geometry-only flows skip the LDE countermeasures: no edge dummies
    // (the paper lists dummy insertion among the optimizations with an
    // area/parasitic trade-off the conventional baseline does not weigh).
    for c in &mut configs {
        c.dummies = false;
    }
    configs.sort_by(|a, b| {
        let ar = |cfg: &CellConfig| {
            generate(tech, spec, cfg)
                .map(|l| {
                    let ar = l.aspect_ratio();
                    // Distance from square on a log scale.
                    ar.max(1.0 / ar)
                })
                .unwrap_or(f64::INFINITY)
        };
        ar(a).total_cmp(&ar(b))
    });
    configs.first().copied()
}

/// Runs the optimized (this-work) flow.
///
/// # Errors
///
/// Propagates optimization, placement, routing, and evaluation failures.
pub fn optimized_flow(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    seed: u64,
) -> Result<FlowOutcome, FlowError> {
    run_flow(
        tech,
        lib,
        spec,
        biases,
        seed,
        FlowKind::Optimized,
        FlowOptions::default(),
        &NoFaults,
        RepairBudgets::default(),
    )
}

/// Runs the optimized flow under a fault-injection plan with bounded
/// repair: faulted candidate evaluations are isolated and skipped, routing
/// failures retried with perturbed net orderings, and gate failures
/// repaired by falling back to the next-best candidate in the offending
/// aspect-ratio bin. A zero-fault [`FaultPlan`] reproduces
/// [`optimized_flow`] bit for bit.
///
/// # Errors
///
/// Same conditions as [`optimized_flow`], plus
/// [`FlowError::RepairExhausted`] when a repair budget runs out.
#[allow(clippy::too_many_arguments)]
pub fn optimized_flow_resilient(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    seed: u64,
    options: FlowOptions,
    plan: &FaultPlan,
    budgets: RepairBudgets,
) -> Result<FlowOutcome, FlowError> {
    run_flow(
        tech,
        lib,
        spec,
        biases,
        seed,
        FlowKind::Optimized,
        options,
        plan,
        budgets,
    )
}

/// Runs the optimized flow with individual steps ablated (for the
/// step-contribution studies).
///
/// # Errors
///
/// Same conditions as [`optimized_flow`].
pub fn optimized_flow_with(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    seed: u64,
    options: FlowOptions,
) -> Result<FlowOutcome, FlowError> {
    run_flow(
        tech,
        lib,
        spec,
        biases,
        seed,
        FlowKind::Optimized,
        options,
        &NoFaults,
        RepairBudgets::default(),
    )
}

/// Runs the manual-layout proxy: the optimized flow with a wider search.
///
/// # Errors
///
/// Same conditions as [`optimized_flow`].
pub fn manual_flow(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    seed: u64,
) -> Result<FlowOutcome, FlowError> {
    run_flow(
        tech,
        lib,
        spec,
        biases,
        seed,
        FlowKind::Manual,
        FlowOptions::default(),
        &NoFaults,
        RepairBudgets::default(),
    )
}

/// Runs the conventional geometry-only baseline.
///
/// This models the non-hierarchical flow the paper compares against
/// ("transistors are laid out to meet geometrical constraints … but
/// performs no optimizations for parasitics", §IV): every *transistor* is
/// an individual placement block — there are no matched multi-device
/// cells — so the signal nets span many more, farther-apart pins than the
/// hierarchical flow's. Device-local parasitics are approximated by the
/// default (squarest, dummy-less, untuned) cell generation.
///
/// # Errors
///
/// Propagates placement/routing/generation failures.
pub fn conventional_flow(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    seed: u64,
) -> Result<FlowOutcome, FlowError> {
    let start = Instant::now();

    // Zeroth gate: the deck itself must be self-consistent and able to
    // carry the primitive library before any request-specific checking.
    let techlint = if FlowOptions::default().verify.enabled() {
        Some(gate(preflight::techlint_preflight(tech, lib))?)
    } else {
        None
    };

    // Schematic preflight: reject malformed requests before generating any
    // geometry. The baseline has no bias records; nominal per-class biases
    // are library invariants and need no re-check.
    let schem = if FlowOptions::default().verify.enabled() {
        Some(gate(preflight::schem_preflight(tech, lib, spec, None))?)
    } else {
        None
    };

    // Default layouts: squarest blocked configuration, untuned.
    let mut layouts: HashMap<String, PrimitiveLayout> = HashMap::new();
    for inst in &spec.instances {
        let def = lib.get(&inst.def).ok_or(FlowError::UnknownPrimitive {
            name: inst.def.clone(),
        })?;
        if def.spec.devices.is_empty() {
            continue;
        }
        if let Some(cfg) = default_config(tech, &def.spec, inst.total_fins) {
            let layout = generate(tech, &def.spec, &cfg).map_err(prima_core::OptError::from)?;
            layouts.insert(inst.name.clone(), layout);
        }
    }

    // Flat placement: one block per transistor.
    let placed = flat_place_and_route(tech, lib, spec, seed)?;
    let blocks: Vec<(prima_geom::Rect, f64)> = placed
        .rects
        .iter()
        .map(|(_, r)| (*r, block_current(None)))
        .collect();
    let (supply_r, power) = supply_grid(tech, &blocks, placed.bbox);

    // Single-wire routes everywhere: k = 1.
    let mut net_wires = HashMap::new();
    for net in spec.nets() {
        if is_power_net(&net) {
            continue;
        }
        if let Some(route) = placed.routing.net(&net) {
            let gr = GlobalRoute {
                layer: route.dominant_layer(),
                len_nm: route.total_len_nm(),
                via_ends: 2,
            };
            net_wires.insert(net.clone(), route_wire(tech, &gr, 1));
        }
    }

    let detailed = DetailRouter::new(tech)
        .assign_with_symmetry(
            placed.routing.routes(),
            &HashMap::new(),
            &spec.symmetric_nets,
        )
        .map_err(|e| FlowError::Measurement {
            what: format!("detailed routing failed: {e}"),
        })?;

    // Verification gate: the flat flow has no rendered cell masks (blocks
    // are abstract per-transistor footprints), so the pass covers
    // placement legality, routing DRC, and connectivity.
    let verify = if FlowOptions::default().verify.enabled() {
        let mut artifacts = FlowArtifacts::new(&spec.name, tech);
        artifacts.cells = placed
            .rects
            .iter()
            .map(|(name, r)| CellArtifact {
                instance: name.clone(),
                outline: *r,
                geometry: None,
            })
            .collect();
        artifacts.pins = placed.pins.clone();
        artifacts.routing = Some(&placed.routing);
        artifacts.detailed = Some(&detailed);
        artifacts.expected_nets = placed.pins.iter().map(|(n, _)| n.clone()).collect();
        Some(gate(check_flow(&artifacts))?)
    } else {
        None
    };

    // Electrical gate. The baseline has no operating-point data (the
    // paper's conventional flow "performs no optimizations for
    // parasitics"), so the EM pass has no currents to propagate and the
    // flat placement makes no symmetry claims; IR, well-tap reach, and
    // connectivity hygiene still apply.
    let erc = if FlowOptions::default().verify.enabled() {
        let report = electrical::erc_report(&ErcBuild {
            tech,
            lib,
            spec,
            biases: None,
            routing: Some(&placed.routing),
            widths: &HashMap::new(),
            pins: &placed.pins,
            rects: &placed.rects,
            layouts: &layouts,
            power: power.as_ref(),
            with_currents: false,
            with_symmetry: false,
        });
        Some(gate(report)?)
    } else {
        None
    };

    Ok(FlowOutcome {
        kind: FlowKind::Conventional,
        techlint,
        schem,
        realization: Realization {
            layouts,
            net_wires,
            supply_r_ohm: supply_r,
        },
        runtime: start.elapsed(),
        sims: HashMap::new(),
        area_um2: placed.area_um2,
        wirelength_um: placed.routing.total_wirelength() as f64 / 1000.0,
        detailed,
        verify,
        erc,
        resilience: ResilienceReport::default(),
        cache: None,
        cache_diagnostics: Vec::new(),
        corners: None,
        gds: None,
    })
}

/// Opens the evaluation cache `policy` asks for, keyed under this
/// technology's content fingerprint and the current testbench revision.
fn open_cache(policy: &CachePolicy, tech: &Technology) -> Option<Arc<EvalCache>> {
    match policy {
        CachePolicy::Off => None,
        // `resolve` hands back the caller's store for `CachePolicy::Shared`
        // (the serving layer's per-tenant namespaces) and opens a fresh one
        // otherwise.
        policy => Some(EvalCache::resolve(
            policy.clone(),
            tech.fingerprint(),
            TESTBENCH_VERSION,
        )),
    }
}

/// Snapshots the cache to disk and converts its disk-tier incidents into
/// degraded-severity diagnostics plus resilience degradations. A failing
/// snapshot is itself such an incident — cache problems are never fatal.
fn finish_cache(
    cache: Option<&EvalCache>,
    resilience: &mut ResilienceReport,
) -> (Option<CacheStats>, Vec<Violation>) {
    let Some(cache) = cache else {
        return (None, Vec::new());
    };
    let mut diagnostics = Vec::new();
    if let Err(e) = cache.save() {
        diagnostics.push(cache_violation("CACHE.IO", format!("snapshot failed: {e}")));
    }
    for event in cache.events() {
        let rule_id = match event.kind {
            CacheEventKind::Corrupt => "CACHE.CORRUPT",
            CacheEventKind::Invalidated => "CACHE.INVALIDATED",
            CacheEventKind::Io => "CACHE.IO",
        };
        diagnostics.push(cache_violation(rule_id, event.detail));
    }
    for v in &diagnostics {
        resilience.record("cache", &v.rule_id, v.message.clone());
    }
    (Some(cache.stats()), diagnostics)
}

/// A degraded-severity lint for one cache incident.
fn cache_violation(rule_id: &str, message: String) -> Violation {
    Violation {
        rule_id: rule_id.to_string(),
        kind: RuleKind::Lint,
        severity: Severity::Degraded,
        layer: None,
        scope: Some("cache".to_string()),
        rects: Vec::new(),
        found: None,
        required: None,
        message,
    }
}

/// Turns a failing verification report into a flow error; passing reports
/// (no error-severity findings — degraded/warning findings ride along)
/// pass through for the outcome.
fn gate(report: VerifyReport) -> Result<VerifyReport, FlowError> {
    if report.is_passing() {
        Ok(report)
    } else {
        Err(gate_error(&report))
    }
}

/// The effective cancellation handle of one run: the caller's token, a
/// fresh deadline token, or both merged (earliest deadline wins; the
/// tightening is visible to every clone of the caller's token).
fn effective_cancel(options: &FlowOptions) -> Option<CancelToken> {
    match (&options.cancel, options.deadline) {
        (Some(t), Some(d)) => {
            t.tighten_deadline(d);
            Some(t.clone())
        }
        (Some(t), None) => Some(t.clone()),
        (None, Some(d)) => Some(CancelToken::with_deadline(d)),
        (None, None) => None,
    }
}

/// Cooperative stage-boundary checkpoint: a no-op without a token.
pub(crate) fn checkpoint(cancel: &Option<CancelToken>) -> Result<(), FlowError> {
    match cancel {
        Some(t) => t.check().map_err(FlowError::from),
        None => Ok(()),
    }
}

/// The flow error a failing report maps to: the first error-severity
/// violation names the failure.
fn gate_error(report: &VerifyReport) -> FlowError {
    FlowError::Verify {
        circuit: report.circuit.clone(),
        violations: report.error_count(),
        first: first_error(report),
    }
}

/// The first error-severity violation of a report, rendered.
fn first_error(report: &VerifyReport) -> String {
    report
        .violations
        .iter()
        .find(|v| v.severity == Severity::Error)
        .map(|v| v.to_string())
        .unwrap_or_default()
}

/// Per-instance selection state carried through the repair loop: the full
/// ranked aspect-ratio bins from Algorithm 1, the fallback cursor, the
/// currently active (tuned) candidate per bin, and which bins have been
/// exhausted and dropped.
pub(crate) struct InstState {
    /// Primitive definition name (the [`EvalLedger`] key).
    pub(crate) def: String,
    /// Bias record the candidates were evaluated under.
    pub(crate) bias: Bias,
    /// Ranked candidates per aspect-ratio bin, best-first.
    pub(crate) bins: Vec<BinRanked>,
    /// Which rank each bin currently fields.
    pub(crate) cursor: RepairCursor,
    /// The active (tuned) candidate and its cost, one per bin.
    pub(crate) active: Vec<(PrimitiveLayout, f64)>,
    /// Bins dropped after exhausting their fallbacks.
    pub(crate) dead: Vec<bool>,
}

/// Tunes one selected candidate when tuning is enabled; a tuning failure
/// degrades to the untuned candidate instead of aborting the flow.
pub(crate) fn tuned_candidate(
    opt: &Optimizer,
    def: &PrimitiveDef,
    bias: &Bias,
    pick: &Evaluated,
    tuning: bool,
    resilience: &mut ResilienceReport,
    inst: &str,
) -> (PrimitiveLayout, f64) {
    if !tuning {
        return (pick.layout.clone(), pick.cost);
    }
    match opt.tune(def, bias, pick.layout.clone()) {
        Ok(t) => (t.layout, t.cost),
        Err(e) => {
            resilience.record(
                "tuning",
                inst,
                format!("tuning failed ({e}); keeping the untuned candidate"),
            );
            (pick.layout.clone(), pick.cost)
        }
    }
}

/// Reorders routes so the failing net goes first and the remainder rotates
/// by the attempt number — a deterministic perturbation that changes which
/// tracks are occupied when the failing net asks for one.
fn perturb_routes(mut routes: Vec<NetRoute>, failing: &str, attempt: usize) -> Vec<NetRoute> {
    let (mut front, mut rest): (Vec<NetRoute>, Vec<NetRoute>) =
        routes.drain(..).partition(|r| r.net == failing);
    if !rest.is_empty() {
        let k = attempt % rest.len();
        rest.rotate_left(k);
    }
    front.extend(rest);
    front
}

/// Scopes of a failing report's error-severity violations, in order.
fn error_scopes(report: &VerifyReport) -> Vec<String> {
    report
        .violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .filter_map(|v| v.scope.clone())
        .collect()
}

/// Shared optimized/manual implementation with fault isolation and bounded
/// repair. With [`NoFaults`] and no organic failures every loop below runs
/// exactly once and the result is bit-identical to the pre-resilience flow.
#[allow(clippy::too_many_arguments)]
fn run_flow(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    seed: u64,
    kind: FlowKind,
    options: FlowOptions,
    injector: &dyn FaultInjector,
    budgets: RepairBudgets,
) -> Result<FlowOutcome, FlowError> {
    let start = Instant::now();

    // Cancellation: merge the caller's token with the options deadline, and
    // refuse to start a run whose budget is already spent.
    let cancel = effective_cancel(&options);
    checkpoint(&cancel)?;

    // Zeroth gate: deck self-consistency + library feasibility. A deck
    // whose rule tables drifted from its stack dies here with an exact
    // `TECH.*`/`LIB.*` rule id instead of panicking inside a router.
    let techlint = if options.verify.enabled() {
        Some(gate(preflight::techlint_preflight(tech, lib))?)
    } else {
        None
    };

    // Schematic preflight: the whole lint suite costs microseconds, so a
    // malformed request dies with exact `SCHEM.*` rule ids before the
    // optimizer (and its simulation counter) even exists.
    let schem = if options.verify.enabled() {
        Some(gate(preflight::schem_preflight(
            tech,
            lib,
            spec,
            Some(biases),
        ))?)
    } else {
        None
    };

    let mut opt = Optimizer::new(tech);
    // The Arc is kept: corner-perturbed optimizers share the same store
    // under their own key address space (see `Optimizer::set_cache`).
    let cache_arc = open_cache(&options.cache, tech);
    if let Some(cache) = &cache_arc {
        opt.set_cache(cache.clone());
    }
    opt.set_solver_limits(options.solver.clone());
    if let Some(token) = &cancel {
        opt.set_cancel(token.clone());
    }
    let n_bins = match kind {
        FlowKind::Manual => 4,
        _ => 3,
    };
    if kind == FlowKind::Manual {
        opt.max_tuning_wires = 10;
        opt.max_port_routes = 10;
    }
    let mut resilience = ResilienceReport::new();
    let mut ledger = EvalLedger::new();

    // ---- Algorithm 1 per primitive: selection + tuning -------------------
    // Instances sharing (definition, sizing, bias) — e.g. the sixteen
    // identical current-starved inverters of the VCO — are optimized once
    // and start from the same ranked bins; the repair loop may then walk
    // their fallback cursors apart per instance. Candidate evaluations that
    // fail or panic are recorded in the ledger and skipped inside
    // `select_bins`; the bins hold the survivors.
    let mut states: Vec<(String, InstState)> = Vec::new();
    type Memo = (
        String,
        u64,
        Bias,
        Vec<BinRanked>,
        Vec<(PrimitiveLayout, f64)>,
    );
    let mut memo: Vec<Memo> = Vec::new();
    for inst in &spec.instances {
        let def = lib.get(&inst.def).ok_or(FlowError::UnknownPrimitive {
            name: inst.def.clone(),
        })?;
        if def.spec.devices.is_empty() {
            continue;
        }
        let bias = biases
            .get(&inst.name)
            .cloned()
            .unwrap_or_else(|| Bias::nominal(tech, &def.class));
        if let Some((.., bins, active)) = memo
            .iter()
            .find(|(d, f, b, ..)| *d == inst.def && *f == inst.total_fins && *b == bias)
        {
            states.push((
                inst.name.clone(),
                InstState {
                    def: inst.def.clone(),
                    bias: bias.clone(),
                    cursor: RepairCursor::new(bins.len()),
                    dead: vec![false; bins.len()],
                    bins: bins.clone(),
                    active: active.clone(),
                },
            ));
            continue;
        }
        let configs = config_space(inst.total_fins);
        if configs.is_empty() {
            continue;
        }
        let bins: Vec<BinRanked> = opt
            .select_bins(def, &bias, &configs, n_bins, injector, &mut ledger)?
            .into_iter()
            .filter(|b| !b.ranked.is_empty())
            .collect();
        if bins.is_empty() {
            return Err(FlowError::NoCandidates {
                instance: inst.name.clone(),
            });
        }
        let mut active = Vec::with_capacity(bins.len());
        for bin in &bins {
            if let Some(pick) = bin.ranked.first() {
                active.push(tuned_candidate(
                    &opt,
                    def,
                    &bias,
                    pick,
                    options.tuning,
                    &mut resilience,
                    &inst.name,
                ));
            }
        }
        memo.push((
            inst.def.clone(),
            inst.total_fins,
            bias.clone(),
            bins.clone(),
            active.clone(),
        ));
        states.push((
            inst.name.clone(),
            InstState {
                def: inst.def.clone(),
                bias,
                cursor: RepairCursor::new(bins.len()),
                dead: vec![false; bins.len()],
                bins,
                active,
            },
        ));
    }

    // ---- Variation stage: PVT corner gating + Monte-Carlo mismatch ------
    // Runs between selection/tuning and placement: surviving bin
    // candidates are re-evaluated across the enabled corner set and gated
    // on worst-case satisfaction, with corner-only failures repaired by
    // next-best-candidate fallback under the corner budget. Exhaustion
    // degrades (CORNER.* diagnostics), never errors; cancellation unwinds.
    let corner_report = match &options.corners {
        CornerPolicy::Off => None,
        CornerPolicy::Sweep(copts) => Some(crate::corners::corner_stage(
            &crate::corners::CornerCtx {
                tech,
                lib,
                opt: &opt,
                copts,
                tuning: options.tuning,
                solver: &options.solver,
                cache: cache_arc.clone(),
                cancel: &cancel,
            },
            &mut states,
            &mut ledger,
            &mut resilience,
        )?),
    };

    // One detail router for the whole run: injected route faults are
    // consumed by the attempt that trips over them and stay consumed, so a
    // retry can succeed.
    let mut router = DetailRouter::new(tech);
    router.set_cancel(cancel.clone());
    for net in spec.nets() {
        let n = injector.route_failures(&net);
        if n > 0 {
            router.inject_failure(&net, n);
        }
    }

    // ---- Place/route + Algorithm 2 + gates, with bounded repair ----------
    let mut gate_attempt: u32 = 0;
    loop {
        gate_attempt += 1;
        checkpoint(&cancel)?;

        // Current option set per instance: the live bins' active
        // candidates. Quality guard: the placer chooses among these by
        // geometry alone, so drop aspect-ratio options whose cost is far
        // off the best — they would let a pathological bin winner into the
        // layout.
        let mut cell_options: HashMap<String, Vec<PrimitiveLayout>> = HashMap::new();
        let mut kept_bins: HashMap<String, Vec<usize>> = HashMap::new();
        for (name, st) in &states {
            let live: Vec<usize> = (0..st.active.len()).filter(|&i| !st.dead[i]).collect();
            if live.is_empty() {
                return Err(FlowError::NoCandidates {
                    instance: name.clone(),
                });
            }
            let best = live
                .iter()
                .map(|&i| st.active[i].1)
                .fold(f64::INFINITY, f64::min);
            let mut keep: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&i| st.active[i].1 <= (2.0 * best).max(best + 5.0))
                .collect();
            if keep.is_empty() {
                keep = live.clone();
            }
            if kind == FlowKind::Manual {
                // The expert commits to the single best-performing cell and
                // hand-fits the floorplan around it.
                let bi = live
                    .iter()
                    .copied()
                    .min_by(|&a, &b| st.active[a].1.total_cmp(&st.active[b].1))
                    .ok_or_else(|| FlowError::NoCandidates {
                        instance: name.clone(),
                    })?;
                keep = vec![bi];
            }
            cell_options.insert(
                name.clone(),
                keep.iter().map(|&i| st.active[i].0.clone()).collect(),
            );
            kept_bins.insert(name.clone(), keep);
        }

        // ---- Place (variant selection) and global-route ------------------
        let placed = place_and_route(tech, spec, &cell_options, seed)?;
        let (routing, chosen) = (&placed.routing, &placed.chosen);
        let blocks: Vec<(prima_geom::Rect, f64)> = placed
            .rects
            .iter()
            .map(|(name, r)| (*r, block_current(biases.get(name))))
            .collect();
        let (supply_r, power) = supply_grid(tech, &blocks, placed.bbox);

        // ---- Algorithm 2: port constraints + reconciliation --------------
        let mut per_net: HashMap<String, Vec<PortConstraint>> = HashMap::new();
        let mut net_routes: HashMap<String, GlobalRoute> = HashMap::new();
        for net in spec.nets() {
            if is_power_net(&net) {
                continue;
            }
            if let Some(route) = routing.net(&net) {
                net_routes.insert(
                    net.clone(),
                    GlobalRoute {
                        layer: route.dominant_layer(),
                        len_nm: route.total_len_nm(),
                        via_ends: 2,
                    },
                );
            }
        }
        for inst in &spec.instances {
            let def = lib.get(&inst.def).ok_or(FlowError::UnknownPrimitive {
                name: inst.def.clone(),
            })?;
            if def.spec.devices.is_empty() {
                continue;
            }
            let bias = biases
                .get(&inst.name)
                .cloned()
                .unwrap_or_else(|| Bias::nominal(tech, &def.class));
            // The routes at this primitive's ports, keyed by port net name.
            let mut routes: HashMap<String, GlobalRoute> = HashMap::new();
            for (port, net) in &inst.conn {
                if let Some(gr) = net_routes.get(net) {
                    routes.insert(port.clone(), *gr);
                }
            }
            if routes.is_empty() {
                continue;
            }
            let layout = chosen.get(&inst.name);
            let cons = opt.port_constraints(def, &bias, layout, inst.total_fins, &routes)?;
            for c in cons {
                // Back-map the port name to the circuit net.
                if let Some(net) = inst.net_of(&c.net) {
                    per_net
                        .entry(net.to_string())
                        .or_default()
                        .push(PortConstraint {
                            net: net.to_string(),
                            ..c
                        });
                }
            }
        }
        // EM clamp: raise every net's width interval to the EM-safe floor
        // for its worst-case current *before* reconciliation, so the widths
        // Algorithm 2 hands the detailed router pass the electrical gate by
        // construction. Currents only exist when port optimization runs —
        // the ablated flow chooses no widths, so there is nothing to keep
        // safe.
        let currents = if options.port_optimization {
            electrical::net_currents(tech, lib, spec, biases, &placed.pins)
        } else {
            Vec::new()
        };
        let mut floors: HashMap<String, u32> = HashMap::new();
        for nc in &currents {
            if let Some(route) = routing.net(&nc.net) {
                floors.insert(
                    nc.net.clone(),
                    prima_erc::em::em_floor(tech, route, nc.worst_a),
                );
            }
        }
        for (net, constraints) in &mut per_net {
            if let Some(&floor) = floors.get(net) {
                clamp_to_em_floor(constraints, floor);
            }
        }
        let mut net_wires = HashMap::new();
        let mut widths: HashMap<String, u32> = HashMap::new();
        for (net, constraints) in &per_net {
            let w = if options.port_optimization {
                reconcile(constraints).w
            } else {
                1
            };
            widths.insert(net.clone(), w);
            if let Some(gr) = net_routes.get(net) {
                net_wires.insert(net.clone(), route_wire(tech, gr, w));
            }
        }
        // Routed nets no primitive constrained still get the EM-safe width
        // (single wires when the net carries no known current).
        for (net, gr) in &net_routes {
            if !widths.contains_key(net) {
                let k = floors.get(net).copied().unwrap_or(1);
                widths.insert(net.clone(), k);
                net_wires.insert(net.clone(), route_wire(tech, gr, k));
            }
        }

        let mut sims = HashMap::new();
        sims.insert("selection", opt.counter().count(Phase::Selection));
        sims.insert("tuning", opt.counter().count(Phase::Tuning));
        sims.insert("ports", opt.counter().count(Phase::PortConstraints));
        sims.insert("corners", opt.counter().count(Phase::Corners));

        // Hand the reconciled widths to the detailed router (paper §I: "the
        // optimized widths are a requirement for the detailed router"),
        // retrying with a perturbed net ordering — the failing net first —
        // when an attempt fails, up to the route budget.
        let mut routes: Vec<NetRoute> = routing.routes().to_vec();
        let mut route_attempt: u32 = 0;
        let detailed = loop {
            route_attempt += 1;
            match router.assign_with_symmetry(&routes, &widths, &spec.symmetric_nets) {
                Ok(d) => break d,
                Err(e) => {
                    let net = match &e {
                        DetailError::Congested { net, .. }
                        | DetailError::ZeroWidth { net }
                        | DetailError::PairDesync { net }
                        | DetailError::BadLayer { net, .. } => net.clone(),
                        // Cancellation is not a routing failure: no retry,
                        // no perturbed re-attempt — unwind immediately.
                        DetailError::Cancelled(c) => return Err(FlowError::Cancelled(*c)),
                    };
                    if route_attempt >= budgets.route_attempts {
                        return Err(FlowError::RepairExhausted {
                            circuit: spec.name.clone(),
                            stage: "detail routing".to_string(),
                            attempts: route_attempt,
                            last: e.to_string(),
                        });
                    }
                    resilience.route_retries += 1;
                    resilience.record(
                        "routing",
                        &net,
                        format!(
                            "attempt {route_attempt} failed ({e}); \
                             retrying with perturbed net order"
                        ),
                    );
                    routes = perturb_routes(routes, &net, route_attempt as usize);
                }
            }
        };

        // ---- Static verification gate (DRC + LVS-lite + lints) -----------
        let verify = if options.verify.enabled() {
            let outline_of: HashMap<&str, prima_geom::Rect> =
                placed.rects.iter().map(|(n, r)| (n.as_str(), *r)).collect();
            let mut artifacts = FlowArtifacts::new(&spec.name, tech);
            for inst in &spec.instances {
                let Some(&outline) = outline_of.get(inst.name.as_str()) else {
                    continue;
                };
                // Re-render the chosen variant's mask geometry; the DRC
                // pass checks the drawn rectangles, not the parasitic
                // model.
                let geometry = chosen.get(&inst.name).and_then(|layout| {
                    lib.get(&inst.def)
                        .and_then(|def| render(tech, &def.spec, &layout.config).ok())
                });
                artifacts.cells.push(CellArtifact {
                    instance: inst.name.clone(),
                    outline,
                    geometry,
                });
            }
            artifacts.pins = placed.pins.clone();
            artifacts.routing = Some(routing);
            artifacts.detailed = Some(&detailed);
            artifacts.expected_nets = placed.pins.iter().map(|(n, _)| n.clone()).collect();
            artifacts.lints = LintInputs {
                metric_weights: {
                    let mut seen_defs: Vec<&str> = Vec::new();
                    let mut weights = Vec::new();
                    for inst in &spec.instances {
                        let Some(def) = lib.get(&inst.def) else {
                            continue;
                        };
                        if seen_defs.contains(&def.name.as_str()) {
                            continue;
                        }
                        seen_defs.push(&def.name);
                        for m in &def.metrics {
                            weights.push((format!("{}.{}", def.name, m.name), m.weight));
                        }
                    }
                    weights
                },
                aspect_candidates: cell_options
                    .values()
                    .flatten()
                    .map(|l| l.aspect_ratio())
                    .collect(),
                n_bins,
                ports: if options.port_optimization {
                    port_intervals(&per_net, &widths)
                } else {
                    Vec::new()
                },
            };
            Some(check_flow(&artifacts))
        } else {
            None
        };

        // Electrical gate: EM over the routed topology at the reconciled
        // widths (clean by construction thanks to the clamp above), static
        // IR on the synthesized grid, symmetry/matching lints, and
        // connectivity hygiene.
        let erc = if options.verify.enabled() {
            Some(electrical::erc_report(&ErcBuild {
                tech,
                lib,
                spec,
                biases: Some(biases),
                routing: Some(routing),
                widths: &widths,
                pins: &placed.pins,
                rects: &placed.rects,
                layouts: &placed.chosen,
                power: power.as_ref(),
                with_currents: options.port_optimization,
                with_symmetry: true,
            }))
        } else {
            None
        };

        // ---- Gate verdict + bounded candidate-fallback repair ------------
        let failure: Option<(&'static str, usize, String, Vec<String>)> =
            [("verify", verify.as_ref()), ("erc", erc.as_ref())]
                .into_iter()
                .find_map(|(g, r)| {
                    r.filter(|r| !r.is_passing())
                        .map(|r| (g, r.error_count(), first_error(r), error_scopes(r)))
                });
        let Some((gate_name, n_errors, first, scopes)) = failure else {
            resilience.absorb_ledger(&ledger);
            let (cache_stats, cache_diagnostics) = finish_cache(opt.cache(), &mut resilience);
            // Stream-out runs only on the gate-clean geometry, just before
            // `placed.chosen` is moved into the realization.
            let gds = if options.gds.enabled() {
                Some(crate::gds::stream_out_stage(&crate::gds::GdsCtx {
                    tech,
                    lib,
                    spec,
                    chosen: &placed.chosen,
                    rects: &placed.rects,
                    pins: &placed.pins,
                    bbox: placed.bbox,
                    detailed: &detailed,
                })?)
            } else {
                None
            };
            return Ok(FlowOutcome {
                kind,
                techlint: techlint.clone(),
                schem: schem.clone(),
                realization: Realization {
                    layouts: placed.chosen,
                    net_wires,
                    supply_r_ohm: supply_r,
                },
                runtime: start.elapsed(),
                sims,
                area_um2: placed.area_um2,
                wirelength_um: placed.routing.total_wirelength() as f64 / 1000.0,
                detailed,
                verify,
                erc,
                resilience,
                cache: cache_stats,
                cache_diagnostics,
                corners: corner_report.clone(),
                gds,
            });
        };
        if gate_attempt >= budgets.gate_attempts {
            // Out of budget: surface the gate failure itself.
            return Err(FlowError::Verify {
                circuit: spec.name.clone(),
                violations: n_errors,
                first,
            });
        }

        // Victim priority: instances a violation names, then instances
        // tapping a violation's net, then spec order. The first victim with
        // a usable fallback gets its chosen bin demoted (the candidate on
        // trial is the one the placer actually put in the layout).
        let mut victims: Vec<String> = Vec::new();
        for scope in &scopes {
            if states.iter().any(|(n, _)| n == scope) {
                victims.push(scope.clone());
            } else {
                for (inst, _) in spec.taps(scope) {
                    victims.push(inst.name.clone());
                }
            }
        }
        victims.extend(states.iter().map(|(n, _)| n.clone()));
        let mut uniq: Vec<String> = Vec::new();
        for v in victims {
            if !uniq.contains(&v) {
                uniq.push(v);
            }
        }

        let mut repaired = false;
        'victims: for name in uniq {
            let Some((_, st)) = states.iter_mut().find(|(n, _)| *n == name) else {
                continue;
            };
            let Some(bin) = placed
                .chosen_variant
                .get(&name)
                .and_then(|&v| kept_bins.get(&name).and_then(|ks| ks.get(v)))
                .copied()
            else {
                continue;
            };
            // Record the failing candidate so no cursor re-selects it.
            let cur = st.cursor.current(bin);
            if let Some(&cand) = st.bins[bin].candidates.get(cur) {
                if !ledger.is_failed(&st.def, cand) {
                    ledger.record(
                        &st.def,
                        cand,
                        false,
                        format!("failed {gate_name} gate: {first}"),
                    );
                }
            }
            let pairs = st.bins[bin].id_pairs(&st.def);
            if let Some(rank) = st.cursor.demote(bin, &pairs, &ledger) {
                let def = lib.get(&st.def).ok_or(FlowError::UnknownPrimitive {
                    name: st.def.clone(),
                })?;
                if let Some(pick) = st.bins[bin].ranked.get(rank) {
                    st.active[bin] = tuned_candidate(
                        &opt,
                        def,
                        &st.bias,
                        pick,
                        options.tuning,
                        &mut resilience,
                        &name,
                    );
                    resilience.record(
                        "gate",
                        &name,
                        format!(
                            "{gate_name} gate failed ({first}); \
                             bin {bin} fell back to rank {rank}"
                        ),
                    );
                    repaired = true;
                    break 'victims;
                }
            }
            // Bin exhausted: drop it so the placer stops choosing it, as
            // long as the instance keeps at least one live bin.
            if st.dead.iter().enumerate().any(|(i, d)| !d && i != bin) {
                st.dead[bin] = true;
                resilience.record(
                    "gate",
                    &name,
                    format!("{gate_name} gate failed ({first}); bin {bin} exhausted, dropped"),
                );
                repaired = true;
                break 'victims;
            }
        }
        if !repaired {
            return Err(FlowError::RepairExhausted {
                circuit: spec.name.clone(),
                stage: format!("{gate_name} gate"),
                attempts: gate_attempt,
                last: first,
            });
        }
        resilience.gate_retries += 1;
    }
}

/// Folds each net's port constraints into lint intervals: when the
/// intervals intersect, the reconciled width must lie in the intersection;
/// disjoint intervals (the Algorithm-2 cost-sum fallback) are checked
/// individually for well-formedness only.
fn port_intervals(
    per_net: &HashMap<String, Vec<PortConstraint>>,
    widths: &HashMap<String, u32>,
) -> Vec<PortInterval> {
    let mut out = Vec::new();
    for (net, constraints) in per_net {
        let lo = constraints.iter().map(|c| c.w_min).max().unwrap_or(1);
        let hi = constraints.iter().filter_map(|c| c.w_max).min();
        let overlapped = hi.is_none_or(|h| lo <= h);
        if overlapped {
            out.push(PortInterval {
                net: net.clone(),
                w_min: lo,
                w_max: hi,
                reconciled: widths.get(net).copied(),
            });
        } else {
            for c in constraints {
                out.push(PortInterval {
                    net: net.clone(),
                    w_min: c.w_min,
                    w_max: c.w_max,
                    reconciled: None,
                });
            }
        }
    }
    out
}

/// Flat (transistor-level) placement and routing for the conventional
/// baseline: each device of each primitive is its own block, and every
/// signal net pins onto every connected device individually.
fn flat_place_and_route(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    seed: u64,
) -> Result<PlacedDesign, FlowError> {
    let mut problem = PlacementProblem::new();
    // (instance, device) blocks plus which net each block's terminals use.
    let mut block_nets: Vec<Vec<String>> = Vec::new();
    let mut index_of: Vec<(String, usize)> = Vec::new(); // (inst, block ix)
    for inst in &spec.instances {
        let def = lib.get(&inst.def).ok_or(FlowError::UnknownPrimitive {
            name: inst.def.clone(),
        })?;
        if def.spec.devices.is_empty() {
            continue;
        }
        for d in &def.spec.devices {
            // A lone transistor block: square-ish footprint from its fin
            // count on the technology grid.
            let fins = (inst.total_fins * d.ratio as u64).max(1);
            let area_nm2 =
                fins as f64 * tech.fin.fin_pitch as f64 * tech.fin.poly_pitch as f64 * 2.0;
            let side = (area_nm2.sqrt() as i64).max(200);
            let ix = problem.add_block(Block::new(
                &format!("{}::{}", inst.name, d.name),
                vec![(side, side)],
            ));
            index_of.push((inst.name.clone(), ix));
            let nets: Vec<String> = [&d.drain, &d.gate, &d.source]
                .iter()
                .filter_map(|port| inst.net_of(port).map(str::to_string))
                .collect();
            block_nets.push(nets);
        }
    }
    for net in spec.nets() {
        if is_power_net(&net) {
            continue;
        }
        let pins: Vec<usize> = block_nets
            .iter()
            .enumerate()
            .filter(|(_, nets)| nets.contains(&net))
            .map(|(i, _)| i)
            .collect();
        if pins.len() >= 2 {
            problem.add_net(Net::new(&net, pins));
        }
    }
    let placement = Placer::new(seed).place(&problem)?;
    let area = placement.bbox(&problem).area() as f64 * 1e-6;

    let mut routing_problem = RoutingProblem::new();
    let mut net_pins: Vec<(String, Vec<Point>)> = Vec::new();
    for net in spec.nets() {
        if is_power_net(&net) {
            continue;
        }
        let pins: Vec<Point> = block_nets
            .iter()
            .enumerate()
            .filter(|(_, nets)| nets.contains(&net))
            .map(|(i, _)| placement.rect(&problem, i).center())
            .collect();
        if pins.len() >= 2 {
            routing_problem.add_net(&net, pins.clone());
            net_pins.push((net.clone(), pins));
        }
    }
    let routing = GlobalRouter::new(tech).route(&routing_problem)?;
    let rects: Vec<(String, prima_geom::Rect)> = index_of
        .iter()
        .map(|(inst, ix)| (inst.clone(), placement.rect(&problem, *ix)))
        .collect();
    let bbox = placement.bbox(&problem);
    Ok(PlacedDesign {
        area_um2: area,
        routing,
        chosen: HashMap::new(),
        chosen_variant: HashMap::new(),
        bbox,
        rects,
        pins: net_pins,
    })
}

/// Deterministic small hash of a port name (FNV-1a) used to spread port
/// positions over a cell boundary.
fn port_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything placement + global routing hands back to a flow: the block
/// geometry (for power-grid synthesis), the chosen layout variants, and
/// the per-net routing pins (for the verification pass).
struct PlacedDesign {
    /// Placement bounding-box area (µm²).
    area_um2: f64,
    /// Global routing of the signal nets.
    routing: RoutingResult,
    /// Chosen layout variant per instance (empty for the flat flow).
    chosen: HashMap<String, PrimitiveLayout>,
    /// Index of the chosen variant into the instance's option list (empty
    /// for the flat flow) — the repair loop maps it back to the
    /// aspect-ratio bin on trial after a gate failure.
    chosen_variant: HashMap<String, usize>,
    /// Placement bounding box.
    bbox: prima_geom::Rect,
    /// Placed outline per block, in placement order.
    rects: Vec<(String, prima_geom::Rect)>,
    /// Pin positions per routed net (only nets with ≥ 2 pins).
    pins: Vec<(String, Vec<Point>)>,
}

/// Places the blocks (choosing a variant per instance) and global-routes
/// the signal nets. Returns the placement area (µm²), the routing result,
/// the chosen layout per instance, and the placed geometry.
fn place_and_route(
    tech: &Technology,
    spec: &CircuitSpec,
    options: &HashMap<String, Vec<PrimitiveLayout>>,
    seed: u64,
) -> Result<PlacedDesign, FlowError> {
    let mut problem = PlacementProblem::new();
    let mut index_of: HashMap<String, usize> = HashMap::new();
    for inst in &spec.instances {
        let variants: Vec<(i64, i64)> = match options.get(&inst.name) {
            Some(layouts) if !layouts.is_empty() => layouts
                .iter()
                .map(|l| (l.bbox.width(), l.bbox.height()))
                .collect(),
            // Passives / unoptimized: a nominal footprint.
            _ => vec![(1000, 1000)],
        };
        let ix = problem.add_block(Block::new(&inst.name, variants));
        index_of.insert(inst.name.clone(), ix);
    }
    for net in spec.nets() {
        if is_power_net(&net) {
            continue;
        }
        let mut pins: Vec<usize> = spec
            .taps(&net)
            .iter()
            .map(|(inst, _)| index_of[&inst.name])
            .collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() >= 2 {
            problem.add_net(Net::new(&net, pins));
        }
    }
    for (a, b) in &spec.symmetry {
        if let (Some(&ia), Some(&ib)) = (index_of.get(a), index_of.get(b)) {
            problem.add_symmetry(ia, ib);
        }
    }

    let placement = Placer::new(seed).place(&problem)?;
    let area = placement.bbox(&problem).area() as f64 * 1e-6;

    // Chosen layout per instance = the variant the placer picked.
    let mut chosen = HashMap::new();
    let mut chosen_variant = HashMap::new();
    for inst in &spec.instances {
        if let Some(layouts) = options.get(&inst.name) {
            if !layouts.is_empty() {
                let v = placement.variants[index_of[&inst.name]].min(layouts.len() - 1);
                chosen.insert(inst.name.clone(), layouts[v].clone());
                chosen_variant.insert(inst.name.clone(), v);
            }
        }
    }

    // Routing: pins at per-net port positions inside each block. A cell's
    // ports sit at distinct boundary locations, so each net gets a
    // deterministic offset from the block center derived from its name —
    // this is what lets the detailed router keep symmetric pairs apart.
    let mut routing_problem = RoutingProblem::new();
    let mut net_pins: Vec<(String, Vec<Point>)> = Vec::new();
    for net in spec.nets() {
        if is_power_net(&net) {
            continue;
        }
        let mut pins: Vec<Point> = Vec::new();
        let mut seen = Vec::new();
        for (inst, port) in spec.taps(&net) {
            if seen.contains(&inst.name) {
                continue;
            }
            seen.push(inst.name.clone());
            let ix = index_of[&inst.name];
            let r = placement.rect(&problem, ix);
            let c = r.center();
            let h = port_hash(port);
            let dx = (h % 1024) as i64 * (r.width() / 2) / 1024 - r.width() / 4;
            let dy = ((h / 1024) % 1024) as i64 * (r.height() / 2) / 1024 - r.height() / 4;
            pins.push(Point::new(c.x + dx, c.y + dy));
        }
        if pins.len() >= 2 {
            routing_problem.add_net(&net, pins.clone());
            net_pins.push((net.clone(), pins));
        }
    }
    let routing = GlobalRouter::new(tech).route(&routing_problem)?;
    let rects: Vec<(String, prima_geom::Rect)> = spec
        .instances
        .iter()
        .map(|inst| {
            let ix = index_of[&inst.name];
            (inst.name.clone(), placement.rect(&problem, ix))
        })
        .collect();
    let bbox = placement.bbox(&problem);
    Ok(PlacedDesign {
        area_um2: area,
        routing,
        chosen,
        chosen_variant,
        bbox,
        rects,
        pins: net_pins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::CsAmp;

    #[test]
    fn conventional_flow_produces_layouts_and_wires() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = CsAmp::spec();
        let out = conventional_flow(&tech, &lib, &spec, 7).unwrap();
        assert_eq!(out.kind, FlowKind::Conventional);
        assert_eq!(out.realization.layouts.len(), 2);
        // The shared output net got a single-wire route.
        assert!(out.realization.net_wires.contains_key("vout"));
        assert!(out.realization.net_wires["vout"].r_ohm > 0.0);
        assert!(out.area_um2 > 0.0);
    }

    #[test]
    fn optimized_flow_runs_all_phases() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = CsAmp::spec();
        let biases = CsAmp::biases(&tech, &lib).unwrap();
        let out = optimized_flow(&tech, &lib, &spec, &biases, 7).unwrap();
        assert_eq!(out.realization.layouts.len(), 2);
        assert!(out.sims["selection"] > 0, "selection sims recorded");
        assert!(out.sims["tuning"] > 0, "tuning sims recorded");
        assert!(out.sims["ports"] > 0, "port sims recorded");
        // Port optimization may widen the route beyond one wire; either way
        // the wire exists and is consistent.
        assert!(out.realization.net_wires.contains_key("vout"));
    }

    #[test]
    fn conventional_flow_is_flat_per_transistor() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = crate::circuits::CsAmp::spec();
        let conv = conventional_flow(&tech, &lib, &spec, 5).unwrap();
        // Two primitives, two transistors total — each its own block, and
        // the default cells still carry the device-local parasitics.
        assert_eq!(conv.realization.layouts.len(), 2);
        assert!(conv.area_um2 > 0.0);
        // Every routed signal net is single-wire (k = 1 ⇒ full route R).
        for (net, wire) in &conv.realization.net_wires {
            assert!(wire.r_ohm > 0.0, "net {net} has no resistance");
        }
        assert!(conv.detailed.verify_no_conflicts());
    }

    #[test]
    fn port_hash_is_stable_and_spreads() {
        // Deterministic across calls…
        assert_eq!(port_hash("da"), port_hash("da"));
        // …and distinct for the names that must not collide (symmetric
        // pairs land at different port positions).
        assert_ne!(port_hash("da") % 1024, port_hash("db") % 1024);
        assert_ne!(port_hash("sa") % 1024, port_hash("sb") % 1024);
        assert_ne!(port_hash("outp") % 1024, port_hash("outn") % 1024);
    }

    #[test]
    fn flow_options_ablate_steps() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = crate::circuits::CsAmp::spec();
        let biases = crate::circuits::CsAmp::biases(&tech, &lib).unwrap();
        let off = FlowOptions {
            tuning: false,
            port_optimization: false,
            ..FlowOptions::default()
        };
        let out = optimized_flow_with(&tech, &lib, &spec, &biases, 7, off).unwrap();
        // With port optimization off, every routed net is a single wire:
        // its resistance equals the k = 1 wire for the same route.
        assert!(out.sims["tuning"] == 0, "tuning must not simulate");
        assert!(out.realization.net_wires.contains_key("vout"));
        let on = optimized_flow(&tech, &lib, &spec, &biases, 7).unwrap();
        assert!(on.sims["tuning"] > 0);
    }

    #[test]
    fn expired_deadline_refuses_to_start() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = crate::circuits::CsAmp::spec();
        let biases = crate::circuits::CsAmp::biases(&tech, &lib).unwrap();
        let opts = FlowOptions {
            deadline: Some(Duration::ZERO),
            ..FlowOptions::default()
        };
        match optimized_flow_with(&tech, &lib, &spec, &biases, 7, opts) {
            Err(crate::FlowError::Cancelled(c)) => {
                assert_eq!(c.reason, prima_cache::CancelReason::Deadline);
            }
            other => panic!("expected Cancelled(Deadline), got {other:?}"),
        }
    }

    #[test]
    fn cancel_mid_flow_unwinds_as_cancelled() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = crate::circuits::CsAmp::spec();
        let biases = crate::circuits::CsAmp::biases(&tech, &lib).unwrap();
        // Trip deterministically a few checkpoints in: deep inside the
        // first candidate evaluations' Newton iterations.
        let token = CancelToken::cancel_after_checks(50);
        let opts = FlowOptions {
            cancel: Some(token),
            ..FlowOptions::default()
        };
        match optimized_flow_with(&tech, &lib, &spec, &biases, 7, opts) {
            Err(crate::FlowError::Cancelled(c)) => {
                assert_eq!(c.reason, prima_cache::CancelReason::Trip);
            }
            other => panic!("expected Cancelled(Trip), got {other:?}"),
        }
    }

    #[test]
    fn strict_solver_limits_still_converge_on_benchmarks() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = crate::circuits::CsAmp::spec();
        let biases = crate::circuits::CsAmp::biases(&tech, &lib).unwrap();
        let opts = FlowOptions {
            solver: SolverLimits::strict(),
            ..FlowOptions::default()
        };
        let out = optimized_flow_with(&tech, &lib, &spec, &biases, 7, opts).unwrap();
        assert!(out.area_um2 > 0.0);
    }

    #[test]
    fn default_config_is_deterministic_blocked_and_squarish() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let a = default_config(&tech, &dp.spec, 96).unwrap();
        let b = default_config(&tech, &dp.spec, 96).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.pattern, PlacementPattern::Aabb);
        assert_eq!(a.total_fins(), 96);
        // Near-square: the geometric criterion rules out strip cells.
        let l = generate(&tech, &dp.spec, &a).unwrap();
        let ar = l.aspect_ratio();
        assert!(ar > 0.2 && ar < 5.0, "aspect ratio {ar}");
    }
}
