//! The high-frequency five-transistor OTA (Fig. 6a / Table VI): an NMOS
//! differential pair, an NMOS tail current mirror, and a PMOS active
//! current-mirror load.

use std::collections::HashMap;
use std::fmt;

use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_spice::analysis::ac::{AcSolver, FrequencySweep};
use prima_spice::analysis::dc::DcSolver;
use prima_spice::measure;
use prima_spice::netlist::Circuit;
use serde::{Deserialize, Serialize};

use crate::builder::{PrimitiveInst, Realization};
use crate::circuits::{node, powered_circuit, prim, supply_current, CircuitSpec};
use crate::FlowError;

/// Circuit-level metrics of the 5T OTA (Table VI rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaMetrics {
    /// Total supply current (µA).
    pub current_ua: f64,
    /// Low-frequency differential gain (dB).
    pub gain_db: f64,
    /// Unity-gain frequency (GHz).
    pub ugf_ghz: f64,
    /// −3 dB bandwidth (MHz).
    pub f3db_mhz: f64,
    /// Phase margin (degrees).
    pub phase_margin_deg: f64,
}

impl fmt::Display for OtaMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "I {:.1} µA, gain {:.2} dB, UGF {:.2} GHz, f3dB {:.1} MHz, PM {:.1}°",
            self.current_ua, self.gain_db, self.ugf_ghz, self.f3db_mhz, self.phase_margin_deg
        )
    }
}

/// The five-transistor OTA benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct FiveTOta;

impl FiveTOta {
    /// Output load capacitance (F).
    pub const C_LOAD: f64 = 60e-15;
    /// Bias reference current into the tail mirror (A); the 1:2 mirror
    /// doubles it into the tail, putting the total supply current near the
    /// paper's 706 µA.
    pub const I_BIAS: f64 = 350e-6;
    /// Differential-pair fins (the paper's Table III example size).
    pub const FINS_DP: u64 = 960;
    /// Tail-mirror reference fins.
    pub const FINS_TAIL: u64 = 240;
    /// Active-load fins.
    pub const FINS_LOAD: u64 = 384;

    /// The primitive-level structure (nets numbered as in Fig. 6a).
    pub fn spec() -> CircuitSpec {
        CircuitSpec {
            name: "ota5t".to_string(),
            instances: vec![
                PrimitiveInst::new(
                    "dp0",
                    "dp",
                    Self::FINS_DP,
                    &[
                        ("da", "n4"),
                        ("db", "n5"),
                        ("ga", "vinp"),
                        ("gb", "vinn"),
                        ("s", "n3"),
                    ],
                ),
                PrimitiveInst::new(
                    "cmtail",
                    "cm_1to2",
                    Self::FINS_TAIL,
                    &[("in", "n1"), ("out", "n3"), ("vss", "vssn")],
                ),
                PrimitiveInst::new(
                    "cmload",
                    "cm_pmos",
                    Self::FINS_LOAD,
                    &[("in", "n4"), ("out", "n5"), ("vdd", "vdd")],
                ),
            ],
            symmetry: vec![],
            symmetric_nets: vec![("n4".to_string(), "n5".to_string())],
        }
    }

    /// Measures Table VI's OTA metrics for a realization.
    ///
    /// # Errors
    ///
    /// Propagates assembly/simulation failures and missing measurements.
    pub fn measure(
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
    ) -> Result<OtaMetrics, FlowError> {
        let spec = Self::spec();
        let mut c = powered_circuit(tech, lib, &spec, realization)?;
        attach_sources(&mut c, tech, 1.0)?;

        let op = DcSolver::new().solve(&c)?;
        let current = supply_current(&op, "VDD")?;

        let vout = node(&c, "n5")?;
        let ac = AcSolver::new().solve_at_op(
            &c,
            &op,
            &FrequencySweep::Decade {
                start: 1e5,
                stop: 200e9,
                points_per_decade: 24,
            },
        )?;
        let gain = measure::dc_gain(&ac, vout)?;
        let ugf = measure::unity_gain_freq(&ac, vout)?;
        let f3 = measure::bw_3db(&ac, vout)?;
        let pm = measure::phase_margin_deg(&ac, vout)?;
        Ok(OtaMetrics {
            current_ua: current * 1e6,
            gain_db: measure::db(gain),
            ugf_ghz: ugf / 1e9,
            f3db_mhz: f3 / 1e6,
            phase_margin_deg: pm,
        })
    }

    /// Per-primitive bias conditions from the schematic operating point.
    pub fn biases(tech: &Technology, lib: &Library) -> Result<HashMap<String, Bias>, FlowError> {
        let spec = Self::spec();
        let mut c = powered_circuit(tech, lib, &spec, &Realization::schematic())?;
        attach_sources(&mut c, tech, 0.0)?;
        let op = DcSolver::new().solve(&c)?;
        let v_n3 = op.voltage(node(&c, "n3")?);
        let v_n4 = op.voltage(node(&c, "n4")?);
        let v_n5 = op.voltage(node(&c, "n5")?);

        let mut dp = Bias::nominal(tech, &prim(lib, "dp")?.class);
        dp.set_v("cm_in", 0.55 * tech.vdd)
            .set_v("vd", v_n4)
            .set_i("tail", 2.0 * Self::I_BIAS)
            .set_load("da", 4e-15)
            .set_load("db", Self::C_LOAD);
        // The DP drives the PMOS diode input: its effective drain load
        // resistance is that diode's 1/gm.
        if let Some(fop) = op.fet_op("cmload.MREF") {
            dp.drain_load_ohm = (1.0 / fop.gm.max(1e-6)).min(2e3);
        }

        let mut tail = Bias::nominal(tech, &prim(lib, "cm_1to2")?.class);
        tail.set_i("ref", Self::I_BIAS).set_v("vout", v_n3);

        let mut load = Bias::nominal(tech, &prim(lib, "cm_pmos")?.class);
        load.set_i("ref", Self::I_BIAS).set_v("vout", v_n5);

        let mut out = HashMap::new();
        out.insert("dp0".to_string(), dp);
        out.insert("cmtail".to_string(), tail);
        out.insert("cmload".to_string(), load);
        Ok(out)
    }
}

fn attach_sources(c: &mut Circuit, tech: &Technology, ac_in: f64) -> Result<(), FlowError> {
    let vcm = 0.55 * tech.vdd;
    let vinp = node(c, "vinp")?;
    c.vsource_ac("VINP", vinp, Circuit::GROUND, vcm, 0.5 * ac_in);
    let vinn = node(c, "vinn")?;
    c.vsource_ac("VINN", vinn, Circuit::GROUND, vcm, -0.5 * ac_in);
    let n1 = node(c, "n1")?;
    c.isource("IBIAS", Circuit::GROUND, n1, FiveTOta::I_BIAS);
    let vss = node(c, "vssn")?;
    c.vsource("VSSN", vss, Circuit::GROUND, 0.0);
    let vout = node(c, "n5")?;
    c.capacitor("CLOAD", vout, Circuit::GROUND, FiveTOta::C_LOAD)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schematic_ota_behaves_like_an_ota() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let m = FiveTOta::measure(&tech, &lib, &Realization::schematic()).unwrap();
        // Total current ≈ tail (2 × 350 µA) within mirror accuracy.
        assert!(
            m.current_ua > 450.0 && m.current_ua < 1100.0,
            "current {}",
            m.current_ua
        );
        assert!(m.gain_db > 10.0 && m.gain_db < 45.0, "gain {}", m.gain_db);
        assert!(m.ugf_ghz > 1.0, "ugf {}", m.ugf_ghz);
        assert!(m.f3db_mhz > 10.0, "f3db {}", m.f3db_mhz);
        assert!(
            m.phase_margin_deg > 30.0 && m.phase_margin_deg <= 180.0,
            "pm {}",
            m.phase_margin_deg
        );
        // Single-dominant-pole consistency: UGF ≈ gain × f3dB (loose).
        let expect_ugf = 10f64.powf(m.gain_db / 20.0) * m.f3db_mhz * 1e6 / 1e9;
        assert!(
            (m.ugf_ghz / expect_ugf - 1.0).abs() < 0.5,
            "ugf {} vs gain×f3db {}",
            m.ugf_ghz,
            expect_ugf
        );
    }

    #[test]
    fn biases_capture_tail_and_diode_load() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let b = FiveTOta::biases(&tech, &lib).unwrap();
        assert!((b["dp0"].i("tail", 0.0) - 700e-6).abs() < 1e-9);
        // The diode-load resistance was extracted from the OP.
        assert!(b["dp0"].drain_load_ohm > 10.0 && b["dp0"].drain_load_ohm <= 2e3);
        assert!(b["cmtail"].i("ref", 0.0) == FiveTOta::I_BIAS);
    }
}
