//! The common-source amplifier of Fig. 2 / Table I: a CS stage with a PMOS
//! current-source load, used to demonstrate the parasitic RC trade-off on
//! the drain (output) net.

use std::collections::HashMap;
use std::fmt;

use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_spice::analysis::ac::{AcSolver, FrequencySweep};
use prima_spice::analysis::dc::DcSolver;
use prima_spice::measure;
use prima_spice::netlist::Circuit;
use serde::{Deserialize, Serialize};

use crate::builder::{PrimitiveInst, Realization};
use crate::circuits::{bisect_bias, node, powered_circuit, prim, supply_current, CircuitSpec};
use crate::FlowError;

/// Circuit-level metrics of the common-source amplifier (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsAmpMetrics {
    /// Low-frequency gain (dB).
    pub gain_db: f64,
    /// Unity-gain frequency (GHz).
    pub ugf_ghz: f64,
    /// Supply power (µW).
    pub power_uw: f64,
    /// Bias current (µA).
    pub current_ua: f64,
}

impl fmt::Display for CsAmpMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gain {:.2} dB, UGF {:.2} GHz, power {:.1} µW, I {:.1} µA",
            self.gain_db, self.ugf_ghz, self.power_uw, self.current_ua
        )
    }
}

/// The common-source amplifier benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsAmp;

impl CsAmp {
    /// Load capacitance at the output (F).
    pub const C_LOAD: f64 = 20e-15;
    /// Total fins of the NMOS stage.
    pub const FINS_M1: u64 = 48;
    /// Total fins of the PMOS current source.
    pub const FINS_M2: u64 = 72;

    /// The primitive-level structure.
    pub fn spec() -> CircuitSpec {
        CircuitSpec {
            name: "cs_amp".to_string(),
            instances: vec![
                PrimitiveInst::new(
                    "m1",
                    "cs_amp",
                    Self::FINS_M1,
                    &[("in", "vin"), ("out", "vout"), ("vss", "vssn")],
                ),
                PrimitiveInst::new(
                    "m2",
                    "csrc_pmos",
                    Self::FINS_M2,
                    &[("out", "vout"), ("vb", "vbp"), ("vdd", "vdd")],
                ),
            ],
            symmetry: vec![],
            symmetric_nets: vec![],
        }
    }

    /// Finds the input bias that centers the output at `0.5·vdd` for the
    /// given realization (the designer's biasing step, done once on the
    /// schematic and reused for layouts).
    fn input_bias(
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
    ) -> Result<f64, FlowError> {
        let spec = Self::spec();
        let vbp = 0.62 * tech.vdd;
        bisect_bias(0.2, 0.7, 0.5 * tech.vdd, 30, |vin| {
            let mut c = powered_circuit(tech, lib, &spec, realization)?;
            attach_sources(&mut c, tech, vin, vbp, 0.0)?;
            let op = DcSolver::new().solve(&c)?;
            Ok(op.voltage(node(&c, "vout")?))
        })
    }

    /// Measures the circuit metrics for a realization.
    ///
    /// # Errors
    ///
    /// Propagates assembly/simulation failures; returns
    /// [`FlowError::Measurement`] when no unity crossing exists.
    pub fn measure(
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
    ) -> Result<CsAmpMetrics, FlowError> {
        let spec = Self::spec();
        // Bias at the schematic point — designer intent is fixed before
        // layout (the paper's premise).
        let vin = Self::input_bias(tech, lib, &Realization::schematic())?;
        let vbp = 0.62 * tech.vdd;
        let mut c = powered_circuit(tech, lib, &spec, realization)?;
        attach_sources(&mut c, tech, vin, vbp, 1.0)?;

        let op = DcSolver::new().solve(&c)?;
        let current = supply_current(&op, "VDD")?;

        let vout = node(&c, "vout")?;
        let ac = AcSolver::new().solve_at_op(
            &c,
            &op,
            &FrequencySweep::Decade {
                start: 1e6,
                stop: 500e9,
                points_per_decade: 20,
            },
        )?;
        let gain = measure::dc_gain(&ac, vout)?;
        let ugf = measure::unity_gain_freq(&ac, vout)?;
        Ok(CsAmpMetrics {
            gain_db: measure::db(gain),
            ugf_ghz: ugf / 1e9,
            power_uw: current * tech.vdd * 1e6,
            current_ua: current * 1e6,
        })
    }

    /// Per-primitive bias conditions from the schematic operating point.
    pub fn biases(tech: &Technology, lib: &Library) -> Result<HashMap<String, Bias>, FlowError> {
        let vin = Self::input_bias(tech, lib, &Realization::schematic())?;
        let vbp = 0.62 * tech.vdd;
        let spec = Self::spec();
        let mut c = powered_circuit(tech, lib, &spec, &Realization::schematic())?;
        attach_sources(&mut c, tech, vin, vbp, 0.0)?;
        let op = DcSolver::new().solve(&c)?;
        let current = supply_current(&op, "VDD")?;
        let vout = op.voltage(node(&c, "vout")?);

        let mut m1 = Bias::nominal(tech, &prim(lib, "cs_amp")?.class);
        m1.set_v("vin", vin)
            .set_v("vout", vout)
            .set_load("out", Self::C_LOAD);
        let mut m2 = Bias::nominal(tech, &prim(lib, "csrc_pmos")?.class);
        m2.set_v("vb", vbp)
            .set_v("vout", vout)
            .set_i("ref", current);
        let mut out = HashMap::new();
        out.insert("m1".to_string(), m1);
        out.insert("m2".to_string(), m2);
        Ok(out)
    }
}

fn attach_sources(
    c: &mut Circuit,
    tech: &Technology,
    vin: f64,
    vbp: f64,
    ac_in: f64,
) -> Result<(), FlowError> {
    let vin_n = node(c, "vin")?;
    c.vsource_ac("VIN", vin_n, Circuit::GROUND, vin, ac_in);
    let vbp_n = node(c, "vbp")?;
    c.vsource("VBP", vbp_n, Circuit::GROUND, vbp);
    let vss = node(c, "vssn")?;
    c.vsource("VSSN", vss, Circuit::GROUND, 0.0);
    let vout = node(c, "vout")?;
    c.capacitor("CLOAD", vout, Circuit::GROUND, CsAmp::C_LOAD)?;
    let _ = tech;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schematic_metrics_are_sane() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let m = CsAmp::measure(&tech, &lib, &Realization::schematic()).unwrap();
        assert!(m.gain_db > 6.0 && m.gain_db < 40.0, "gain {}", m.gain_db);
        assert!(m.ugf_ghz > 0.5 && m.ugf_ghz < 100.0, "ugf {}", m.ugf_ghz);
        assert!(
            m.current_ua > 20.0 && m.current_ua < 2000.0,
            "I {}",
            m.current_ua
        );
        // Power = I × VDD.
        assert!((m.power_uw - m.current_ua * tech.vdd).abs() < 1e-6);
    }

    #[test]
    fn biases_reflect_operating_point() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let biases = CsAmp::biases(&tech, &lib).unwrap();
        let m1 = &biases["m1"];
        // Output centered near mid-rail by construction.
        let vout = m1.v("vout", 0.0);
        assert!((vout - 0.4).abs() < 0.05, "vout {vout}");
        assert!(biases["m2"].i("ref", 0.0) > 1e-5);
    }

    #[test]
    fn wire_widths_shift_performance_like_fig2() {
        use prima_primitives::ExternalWire;
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let sch = CsAmp::measure(&tech, &lib, &Realization::schematic()).unwrap();

        // Narrow drain wire: high R, low C.
        let mut narrow = Realization::schematic();
        narrow.net_wires.insert(
            "vout".to_string(),
            ExternalWire {
                r_ohm: 400.0,
                c_f: 0.4e-15,
            },
        );
        // Wide drain wire: low R, high C.
        let mut wide = Realization::schematic();
        wide.net_wires.insert(
            "vout".to_string(),
            ExternalWire {
                r_ohm: 30.0,
                c_f: 6e-15,
            },
        );
        let mn = CsAmp::measure(&tech, &lib, &narrow).unwrap();
        let mw = CsAmp::measure(&tech, &lib, &wide).unwrap();
        // The wide wire's extra C lowers UGF below the narrow wire's.
        assert!(mw.ugf_ghz < mn.ugf_ghz, "wide {mw}, narrow {mn}");
        // Both degrade (or match) the schematic UGF.
        assert!(mn.ugf_ghz <= sch.ugf_ghz * 1.01);
        // Currents stay near the schematic value (Fig. 2: power unchanged).
        assert!((mn.current_ua - sch.current_ua).abs() / sch.current_ua < 0.12);
    }
}
