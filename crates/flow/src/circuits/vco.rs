//! The eight-stage differential ring-oscillator VCO (Table VII):
//! current-starved inverters per phase with weak cross-coupled latches for
//! phase alignment, closed with a twist so the even-stage differential ring
//! oscillates.

use std::collections::HashMap;
use std::fmt;

use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_spice::analysis::tran::{InitialState, TranSolver};
use prima_spice::measure;
use prima_spice::netlist::Circuit;
use serde::{Deserialize, Serialize};

use crate::builder::{PrimitiveInst, Realization};
use crate::circuits::{node, powered_circuit, CircuitSpec};
use crate::FlowError;

/// VCO tuning-curve metrics (Table VII rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcoMetrics {
    /// Maximum oscillation frequency over the control range (GHz).
    pub f_max_ghz: f64,
    /// Minimum oscillation frequency over the control range (GHz).
    pub f_min_ghz: f64,
    /// Control range over which the ring oscillates `(lo, hi)` in volts.
    pub v_range: (f64, f64),
    /// The sampled tuning curve: `(vctrl, frequency GHz)`, 0 = no
    /// oscillation.
    pub curve: Vec<(f64, f64)>,
}

impl fmt::Display for VcoMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fmax {:.2} GHz, fmin {:.2} GHz, range {:.2}–{:.2} V",
            self.f_max_ghz, self.f_min_ghz, self.v_range.0, self.v_range.1
        )
    }
}

/// The RO-VCO benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct RoVco {
    /// Number of differential stages.
    pub stages: usize,
    /// Control-voltage sample points.
    pub vctrl_points: Vec<f64>,
}

impl Default for RoVco {
    fn default() -> Self {
        RoVco {
            stages: 8,
            vctrl_points: vec![0.0, 0.25, 0.5],
        }
    }
}

impl RoVco {
    /// Fins per current-starved inverter.
    pub const FINS_CSI: u64 = 16;
    /// Fins per alignment latch.
    pub const FINS_LATCH: u64 = 4;

    /// A smaller VCO for fast tests.
    pub fn small() -> Self {
        RoVco {
            stages: 4,
            vctrl_points: vec![0.1, 0.5],
        }
    }

    /// The primitive-level structure: per stage, one CSI per phase and a
    /// latch between phases; the ring closes with a cross (twist).
    pub fn spec(&self) -> CircuitSpec {
        let n = self.stages;
        let mut instances = Vec::new();
        let mut symmetry = Vec::new();
        for i in 0..n {
            let next = (i + 1) % n;
            // The twist: the last stage's outputs cross phases.
            let (out_p, out_n) = if i == n - 1 {
                (format!("n{next}"), format!("p{next}"))
            } else {
                (format!("p{next}"), format!("n{next}"))
            };
            instances.push(PrimitiveInst::new(
                &format!("csip{i}"),
                "csi",
                Self::FINS_CSI,
                &[
                    ("in", &format!("p{i}")),
                    ("out", &out_p),
                    ("vbp", "vbp"),
                    ("vbn", "vbn"),
                    ("vdd", "vdd"),
                    ("vss", "vssn"),
                ],
            ));
            instances.push(PrimitiveInst::new(
                &format!("csin{i}"),
                "csi",
                Self::FINS_CSI,
                &[
                    ("in", &format!("n{i}")),
                    ("out", &out_n),
                    ("vbp", "vbp"),
                    ("vbn", "vbn"),
                    ("vdd", "vdd"),
                    ("vss", "vssn"),
                ],
            ));
            instances.push(PrimitiveInst::new(
                &format!("latch{i}"),
                "latch_starved",
                Self::FINS_LATCH,
                &[
                    ("outp", &format!("p{i}")),
                    ("outn", &format!("n{i}")),
                    ("vbp", "vbp"),
                    ("vbn", "vbn"),
                    ("vdd", "vdd"),
                    ("vss", "vssn"),
                ],
            ));
            symmetry.push((format!("csip{i}"), format!("csin{i}")));
        }
        let symmetric_nets = (0..n).map(|i| (format!("p{i}"), format!("n{i}"))).collect();
        CircuitSpec {
            name: "rovco".to_string(),
            instances,
            symmetry,
            symmetric_nets,
        }
    }

    /// Maps a control voltage (0–0.5 V, the paper's range) to the starving
    /// bias pair: the footer gate sits exactly at the deck's NMOS threshold
    /// at `vctrl = 0` and rises to a moderate overdrive at full control,
    /// spanning the paper's ~40× frequency range; the header mirrors it.
    /// Referencing the threshold (instead of a fixed voltage) keeps the
    /// starving devices conducting on every bundled node, from the 0.8 V
    /// FinFET deck to the 1.8 V SKY130-flavored one.
    pub fn control_to_bias(tech: &Technology, vctrl: f64) -> (f64, f64) {
        let vbn = tech.nmos.vth0 + 0.35 * vctrl;
        let vbp = tech.vdd - vbn;
        (vbn, vbp)
    }

    /// Oscillation frequency at one control voltage (GHz; `None` when the
    /// ring does not oscillate).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn frequency_at(
        &self,
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
        vctrl: f64,
    ) -> Result<Option<f64>, FlowError> {
        let spec = self.spec();
        let mut c = powered_circuit(tech, lib, &spec, realization)?;
        let (vbn, vbp) = Self::control_to_bias(tech, vctrl);
        let vbn_n = node(&c, "vbn")?;
        c.vsource("VBN", vbn_n, Circuit::GROUND, vbn);
        let vbp_n = node(&c, "vbp")?;
        c.vsource("VBP", vbp_n, Circuit::GROUND, vbp);
        let vss = node(&c, "vssn")?;
        c.vsource("VSSN", vss, Circuit::GROUND, 0.0);
        // Each stage drives interconnect in addition to the next gate.
        for i in 0..self.stages {
            for phase in ["p", "n"] {
                let n = node(&c, &format!("{phase}{i}"))?;
                c.capacitor(&format!("CSTG_{phase}{i}"), n, Circuit::GROUND, 3e-15)?;
            }
        }

        // Kick: a brief current pulse into phase 0 breaks the metastable
        // all-balanced DC point; the differential ring then regenerates.
        let p0 = node(&c, "p0")?;
        let n0 = node(&c, "n0")?;
        c.isource_wave(
            "IKICK",
            Circuit::GROUND,
            p0,
            prima_spice::netlist::Waveform::Pulse {
                v1: 0.0,
                v2: 150e-6,
                delay: 5e-12,
                rise: 5e-12,
                fall: 5e-12,
                width: 60e-12,
                period: f64::INFINITY,
            },
            0.0,
        );

        // Scale both the horizon and the step with the oscillation period
        // expected at this control voltage (log-linear between ~0.5 GHz at
        // the bottom and ~12 GHz at the top for the 8-stage ring, faster
        // for shorter rings): ~14 settled periods at ≥ 55 samples each.
        let f_est_hz = {
            // Shorter rings oscillate proportionally faster.
            let base = 0.5e9 * 8.0 / self.stages as f64;
            let span: f64 = 24.0; // fmax/fmin ratio across the range
            base * span.powf(vctrl.clamp(0.0, 0.5) / 0.5)
        };
        let period = 1.0 / f_est_hz;
        let t_stop = 14.0 * period;
        // Layout realizations run slower than the schematic estimate; keep
        // a 2× sampling margin.
        let dt = (period / 110.0).clamp(0.7e-12, 25e-12);
        let res = TranSolver::new(dt, t_stop)
            .initial(InitialState::OperatingPoint)
            .solve(&c)?;
        let t = res.times().to_vec();
        let vp = res.voltage(p0);
        let vn = res.voltage(n0);
        let diff: Vec<f64> = vp.iter().zip(vn.iter()).map(|(a, b)| a - b).collect();

        // Require a healthy differential swing to call it oscillation.
        let swing = measure::settled_peak_to_peak(&diff)?;
        if swing < 0.3 * tech.vdd {
            return Ok(None);
        }
        // Not oscillating is an expected outcome at some control voltages
        // (the caller records 0 GHz); malformed data is a real error.
        match measure::osc_frequency(&t, &diff, 6) {
            Ok(f) => Ok(Some(f / 1e9)),
            Err(measure::MeasureError::NoCrossing { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Sweeps the control voltage and summarizes the tuning curve.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; returns [`FlowError::Measurement`]
    /// if the ring never oscillates anywhere in the range.
    pub fn measure(
        &self,
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
    ) -> Result<VcoMetrics, FlowError> {
        let mut curve = Vec::new();
        for &vctrl in &self.vctrl_points {
            let f = self.frequency_at(tech, lib, realization, vctrl)?;
            curve.push((vctrl, f.unwrap_or(0.0)));
        }
        let oscillating: Vec<&(f64, f64)> = curve.iter().filter(|(_, f)| *f > 0.0).collect();
        if oscillating.is_empty() {
            return Err(FlowError::Measurement {
                what: "VCO does not oscillate anywhere in the control range".to_string(),
            });
        }
        let f_max = oscillating.iter().map(|(_, f)| *f).fold(0.0, f64::max);
        let f_min = oscillating
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::INFINITY, f64::min);
        let v_lo = oscillating
            .iter()
            .map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min);
        let v_hi = oscillating.iter().map(|(v, _)| *v).fold(0.0, f64::max);
        Ok(VcoMetrics {
            f_max_ghz: f_max,
            f_min_ghz: f_min,
            v_range: (v_lo, v_hi),
            curve,
        })
    }

    /// Per-primitive bias conditions (mid-range control point).
    pub fn biases(
        &self,
        tech: &Technology,
        lib: &Library,
    ) -> Result<HashMap<String, Bias>, FlowError> {
        let (vbn, vbp) = Self::control_to_bias(tech, 0.35);
        let mut out = HashMap::new();
        for inst in self.spec().instances {
            let def = lib.get(&inst.def).ok_or(FlowError::UnknownPrimitive {
                name: inst.def.clone(),
            })?;
            let mut b = Bias::nominal(tech, &def.class);
            if inst.def == "csi" {
                b.set_v("vbn", vbn).set_v("vbp", vbp).set_load("out", 2e-15);
            }
            if inst.def == "latch_starved" {
                b.set_v("vbn", vbn).set_v("vbp", vbp);
            }
            out.insert(inst.name.clone(), b);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_oscillates_and_tunes() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let vco = RoVco::small();
        let slow = vco
            .frequency_at(&tech, &lib, &Realization::schematic(), 0.1)
            .unwrap();
        let fast = vco
            .frequency_at(&tech, &lib, &Realization::schematic(), 0.5)
            .unwrap();
        let fast = fast.expect("ring oscillates at full control");
        assert!(fast > 0.2, "fast frequency {fast} GHz");
        if let Some(slow) = slow {
            assert!(slow < fast, "tuning: slow {slow} < fast {fast}");
        }
    }
}
