//! The StrongARM comparator (Fig. 3 / Table VI): a clocked differential
//! pair, a cross-coupled inverter latch with split NMOS sources, and four
//! PMOS precharge switches.

use std::collections::HashMap;
use std::fmt;

use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_spice::analysis::tran::TranSolver;
use prima_spice::measure::{self, Edge};
use prima_spice::netlist::{Circuit, Waveform};
use serde::{Deserialize, Serialize};

use crate::builder::{PrimitiveInst, Realization};
use crate::circuits::{node, powered_circuit, prim, CircuitSpec};
use crate::FlowError;

/// Circuit-level metrics of the StrongARM comparator (Table VI rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrongArmMetrics {
    /// Clock-to-output decision delay (ps).
    pub delay_ps: f64,
    /// Average supply power at the test clock rate (µW).
    pub power_uw: f64,
}

impl fmt::Display for StrongArmMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay {:.1} ps, power {:.1} µW",
            self.delay_ps, self.power_uw
        )
    }
}

/// The StrongARM comparator benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrongArm;

impl StrongArm {
    /// Clock frequency of the power measurement (Hz).
    pub const F_CLK: f64 = 1e9;
    /// Differential input applied during the decision (V).
    pub const V_IN_DIFF: f64 = 50e-3;
    /// Input pair fins.
    pub const FINS_DP: u64 = 64;
    /// Latch fins.
    pub const FINS_LATCH: u64 = 32;
    /// Precharge switch fins.
    pub const FINS_SW: u64 = 8;
    /// Output load per side (F).
    pub const C_LOAD: f64 = 8e-15;

    /// The primitive-level structure.
    pub fn spec() -> CircuitSpec {
        CircuitSpec {
            name: "strongarm".to_string(),
            instances: vec![
                PrimitiveInst::new(
                    "dpin",
                    "dp_switched",
                    Self::FINS_DP,
                    &[
                        ("da", "xa"),
                        ("db", "xb"),
                        ("ga", "vinp"),
                        ("gb", "vinn"),
                        ("clk", "clk"),
                        ("vss", "vssn"),
                    ],
                ),
                PrimitiveInst::new(
                    "latch0",
                    "latch",
                    Self::FINS_LATCH,
                    &[
                        ("outp", "outp"),
                        ("outn", "outn"),
                        ("sa", "xa"),
                        ("sb", "xb"),
                        ("vdd", "vdd"),
                    ],
                ),
                PrimitiveInst::new(
                    "swxa",
                    "switch_pmos",
                    Self::FINS_SW,
                    &[("a", "vdd"), ("b", "xa"), ("en", "clk")],
                ),
                PrimitiveInst::new(
                    "swxb",
                    "switch_pmos",
                    Self::FINS_SW,
                    &[("a", "vdd"), ("b", "xb"), ("en", "clk")],
                ),
                PrimitiveInst::new(
                    "swop",
                    "switch_pmos",
                    Self::FINS_SW,
                    &[("a", "vdd"), ("b", "outp"), ("en", "clk")],
                ),
                PrimitiveInst::new(
                    "swon",
                    "switch_pmos",
                    Self::FINS_SW,
                    &[("a", "vdd"), ("b", "outn"), ("en", "clk")],
                ),
            ],
            symmetry: vec![
                ("swxa".to_string(), "swxb".to_string()),
                ("swop".to_string(), "swon".to_string()),
            ],
            symmetric_nets: vec![
                ("xa".to_string(), "xb".to_string()),
                ("outp".to_string(), "outn".to_string()),
            ],
        }
    }

    /// Runs the clocked transient and extracts delay and power.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; returns [`FlowError::Measurement`]
    /// when the comparator never resolves.
    pub fn measure(
        tech: &Technology,
        lib: &Library,
        realization: &Realization,
    ) -> Result<StrongArmMetrics, FlowError> {
        let spec = Self::spec();
        let mut c = powered_circuit(tech, lib, &spec, realization)?;
        let vdd = tech.vdd;
        let vcm = 0.6 * vdd;

        let vinp = node(&c, "vinp")?;
        c.vsource("VINP", vinp, Circuit::GROUND, vcm + Self::V_IN_DIFF / 2.0);
        let vinn = node(&c, "vinn")?;
        c.vsource("VINN", vinn, Circuit::GROUND, vcm - Self::V_IN_DIFF / 2.0);
        let vss = node(&c, "vssn")?;
        c.vsource("VSSN", vss, Circuit::GROUND, 0.0);
        let period = 1.0 / Self::F_CLK;
        let clk = node(&c, "clk")?;
        c.vsource_wave(
            "VCLK",
            clk,
            Circuit::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: vdd,
                delay: 0.2e-9,
                rise: 8e-12,
                fall: 8e-12,
                width: period / 2.0,
                period,
            },
            0.0,
        );
        for net in ["outp", "outn"] {
            let n = node(&c, net)?;
            c.capacitor(&format!("CL_{net}"), n, Circuit::GROUND, Self::C_LOAD)?;
        }

        // Two full clock cycles: measure on the second decision edge, after
        // the first cycle has exercised reset.
        let t_stop = 0.2e-9 + 2.0 * period;
        let res = TranSolver::new(0.5e-12, t_stop).solve(&c)?;
        let t = res.times().to_vec();
        let vclk = res.voltage(clk);
        let outp = res.voltage(node(&c, "outp")?);
        let outn = res.voltage(node(&c, "outn")?);
        // Decision: |outp − outn| crosses vdd/2 after the second rising
        // clock edge (the precharge phase resets both outputs high, so the
        // magnitude starts near zero each cycle).
        let diff: Vec<f64> = outp
            .iter()
            .zip(outn.iter())
            .map(|(p, n)| (p - n).abs())
            .collect();
        let t_clk2 = measure::cross_time(&t, &vclk, vdd / 2.0, Edge::Rising, 2).map_err(|e| {
            FlowError::Measurement {
                what: format!("clock edge not found: {e}"),
            }
        })?;
        let mut t_dec = None;
        for i in 1..diff.len() {
            if t[i] >= t_clk2 && diff[i - 1] < vdd / 2.0 && diff[i] >= vdd / 2.0 {
                let frac = (vdd / 2.0 - diff[i - 1]) / (diff[i] - diff[i - 1]);
                t_dec = Some(t[i - 1] + frac * (t[i] - t[i - 1]));
                break;
            }
        }
        let t_dec = t_dec.ok_or(FlowError::Measurement {
            what: "comparator did not resolve".to_string(),
        })?;
        let delay = t_dec - t_clk2;

        let isup = res.branch_current("VDD").ok_or(FlowError::Measurement {
            what: "no supply branch".to_string(),
        })?;
        let i_abs: Vec<f64> = isup.iter().map(|x| x.abs()).collect();
        let power = measure::average(&t, &i_abs, 0.2e-9 + period, 0.2e-9 + 2.0 * period)? * vdd;

        Ok(StrongArmMetrics {
            delay_ps: delay * 1e12,
            power_uw: power * 1e6,
        })
    }

    /// Per-primitive bias conditions.
    pub fn biases(tech: &Technology, lib: &Library) -> Result<HashMap<String, Bias>, FlowError> {
        let vdd = tech.vdd;
        let mut out = HashMap::new();
        let mut dp = Bias::nominal(tech, &prim(lib, "dp_switched")?.class);
        dp.set_v("cm_in", 0.6 * vdd).set_v("vd", 0.7 * vdd);
        // The X nodes see only the latch sources and a precharge switch —
        // a few fF, not the generic amplifier load; with the real loading
        // the cost function feels every femtofarad the tuner would add.
        dp.set_load("da", 3e-15).set_load("db", 3e-15);
        out.insert("dpin".to_string(), dp);
        let mut latch = Bias::nominal(tech, &prim(lib, "latch")?.class);
        latch.set_v("vd", 0.5 * vdd);
        out.insert("latch0".to_string(), latch);
        for name in ["swxa", "swxb", "swop", "swon"] {
            let mut sw = Bias::nominal(tech, &prim(lib, "switch_pmos")?.class);
            sw.set_v("von", 0.0).set_v("vsig", vdd);
            out.insert(name.to_string(), sw);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schematic_comparator_resolves() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let m = StrongArm::measure(&tech, &lib, &Realization::schematic()).unwrap();
        assert!(
            m.delay_ps > 1.0 && m.delay_ps < 200.0,
            "delay {} ps",
            m.delay_ps
        );
        assert!(
            m.power_uw > 5.0 && m.power_uw < 2000.0,
            "power {}",
            m.power_uw
        );
    }
}
