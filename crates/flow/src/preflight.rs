//! The schematic preflight: the flow's first gate, run before the
//! optimizer is even constructed.
//!
//! A malformed circuit request — a typo'd net, an unknown primitive, a
//! sizing with no legal factorization, a bias outside the technology's
//! ranges — previously surfaced seconds into a cold run (or, for an empty
//! configuration space, not at all: the instance silently degraded to an
//! ideal device). [`schem_preflight`] expands the request into
//! `prima-schem`'s device-level connectivity graph and runs the full
//! `SCHEM.*` lint suite in microseconds, so the flows can reject it with
//! exact rule ids before any layout is generated or testbench simulated.
//!
//! Before even that, [`techlint_preflight`] lints the *deck itself*
//! (`TECH.*`/`LIB.*` rules): a technology whose rule tables drifted from
//! its metal stack, or on which some library primitive can never render
//! DRC-clean, is rejected once per flow instead of panicking inside a
//! router three stages later. The full gate order is
//! techlint → schem → layout → verify → erc.

use std::collections::HashMap;

use prima_core::diagnostics::VerifyReport;
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_schem::{check_schem, SchemCircuit, SchemInstance, SchemOptions};

use crate::circuits::CircuitSpec;

/// Converts a flow [`CircuitSpec`] into the analyzer's circuit form.
fn to_schem_circuit(spec: &CircuitSpec) -> SchemCircuit {
    SchemCircuit {
        name: spec.name.clone(),
        instances: spec
            .instances
            .iter()
            .map(|inst| SchemInstance {
                name: inst.name.clone(),
                def: inst.def.clone(),
                total_fins: inst.total_fins,
                conn: inst.conn.clone(),
            })
            .collect(),
        symmetry: spec.symmetry.clone(),
        symmetric_nets: spec.symmetric_nets.clone(),
    }
}

/// Runs the static technology/library analyzer — the true zeroth gate,
/// before the schematic preflight. Purely data-driven (deck
/// self-consistency plus a feasibility proof for every library primitive
/// on this deck); performs zero simulations, so it costs microseconds and
/// can run once per flow even under benchmarking policies.
pub fn techlint_preflight(tech: &Technology, lib: &Library) -> VerifyReport {
    prima_techlint::check_deck(tech, lib)
}

/// Runs the full schematic lint suite over a flow circuit request.
///
/// External nets are derived structurally (gate-only nets and
/// diode-connected current inputs are assumed testbench-driven — the same
/// heuristic the flow's wire synthesis uses), so callers need no explicit
/// list. Pass `None` for `biases` when none are known (the conventional
/// baseline); nominal per-class biases are library invariants and are not
/// re-checked.
pub fn schem_preflight(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: Option<&HashMap<String, Bias>>,
) -> VerifyReport {
    let circuit = to_schem_circuit(spec);
    let empty = HashMap::new();
    check_schem(
        tech,
        lib,
        &circuit,
        biases.unwrap_or(&empty),
        &SchemOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{CsAmp, FiveTOta, RoVco, StrongArm};

    #[test]
    fn bundled_decks_pass_techlint_preflight() {
        let lib = Library::standard();
        for tech in [
            Technology::finfet7(),
            Technology::bulk16(),
            Technology::sky130ish(),
        ] {
            let report = techlint_preflight(&tech, &lib);
            assert!(
                report.is_passing(),
                "{}: {:?}",
                tech.name,
                report.violations
            );
        }
    }

    #[test]
    fn broken_deck_fails_techlint_preflight() {
        let mut tech = Technology::finfet7();
        tech.electrical.em_ma_per_cut.truncate(2);
        let report = techlint_preflight(&tech, &Library::standard());
        assert!(report.has_rule("TECH.EM.VIA"));
        assert!(!report.is_passing());
    }

    #[test]
    fn all_benchmark_circuits_preflight_clean() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let vco = RoVco::small();
        for (spec, biases) in [
            (CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
            (FiveTOta::spec(), FiveTOta::biases(&tech, &lib).unwrap()),
            (StrongArm::spec(), StrongArm::biases(&tech, &lib).unwrap()),
            (vco.spec(), vco.biases(&tech, &lib).unwrap()),
        ] {
            let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
            assert!(
                report.violations.is_empty(),
                "{} expected clean, got {:?}",
                spec.name,
                report.violations
            );
        }
    }
}
