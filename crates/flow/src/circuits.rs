//! The paper's benchmark circuits (§IV): primitive-level structure plus
//! circuit-level testbenches.
//!
//! Each circuit provides
//!
//! * `spec()` — its primitive instances and connectivity (the annotated
//!   netlist of Fig. 1),
//! * `biases()` — per-primitive DC bias conditions extracted from a
//!   circuit-level schematic simulation (§II-B: "we get this information as
//!   input from circuit-level schematic simulations"), and
//! * `measure()` — the circuit-level performance metrics of Tables VI/VII
//!   for any [`Realization`] (schematic, conventional, optimized, manual).

use prima_pdk::Technology;
use prima_primitives::{Library, PrimitiveDef};
use prima_spice::analysis::dc::OperatingPoint;
use prima_spice::netlist::{Circuit, NodeId};
use serde::{Deserialize, Serialize};

use crate::builder::{build_circuit, PrimitiveInst, Realization, VDD_EXT};
use crate::FlowError;

pub mod cs_amp;
pub mod ota;
pub mod strongarm;
pub mod vco;

pub use cs_amp::{CsAmp, CsAmpMetrics};
pub use ota::{FiveTOta, OtaMetrics};
pub use strongarm::{StrongArm, StrongArmMetrics};
pub use vco::{RoVco, VcoMetrics};

/// A circuit's primitive-level structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitSpec {
    /// Circuit name.
    pub name: String,
    /// Primitive instances.
    pub instances: Vec<PrimitiveInst>,
    /// Instance pairs placed symmetrically (matched signal paths).
    pub symmetry: Vec<(String, String)>,
    /// Net pairs the detailed router must route symmetrically (the
    /// geometric constraint that preserves a matched pair's offset).
    pub symmetric_nets: Vec<(String, String)>,
}

impl CircuitSpec {
    /// Top-level nets in first-appearance order (excluding the supply/rail
    /// plumbing nets).
    pub fn nets(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for inst in &self.instances {
            for (_, net) in &inst.conn {
                if !seen.contains(net) {
                    seen.push(net.clone());
                }
            }
        }
        seen
    }

    /// The instances connected to a net, with the ports they use.
    pub fn taps(&self, net: &str) -> Vec<(&PrimitiveInst, &str)> {
        let mut out = Vec::new();
        for inst in &self.instances {
            for (port, n) in &inst.conn {
                if n == net {
                    out.push((inst, port.as_str()));
                }
            }
        }
        out
    }
}

/// Assembles the circuit and drives the supply; the returned circuit still
/// needs its signal sources.
pub(crate) fn powered_circuit(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    realization: &Realization,
) -> Result<Circuit, FlowError> {
    let mut c = build_circuit(tech, lib, &spec.instances, realization)?;
    let vdd_ext = node(&c, VDD_EXT)?;
    c.vsource("VDD", vdd_ext, Circuit::GROUND, tech.vdd);
    Ok(c)
}

/// Looks up a node the builder just created; absence is an assembly bug
/// surfaced as a typed error rather than a panic.
pub(crate) fn node(c: &Circuit, name: &str) -> Result<NodeId, FlowError> {
    c.find_node(name).ok_or_else(|| FlowError::Measurement {
        what: format!("net {name} missing from the assembled circuit"),
    })
}

/// A primitive definition the standard library must provide.
pub(crate) fn prim<'a>(lib: &'a Library, name: &str) -> Result<&'a PrimitiveDef, FlowError> {
    lib.get(name).ok_or_else(|| FlowError::UnknownPrimitive {
        name: name.to_string(),
    })
}

/// Magnitude of the DC current drawn through the named supply source.
pub(crate) fn supply_current(op: &OperatingPoint, source: &str) -> Result<f64, FlowError> {
    op.branch_current(source)
        .map(f64::abs)
        .ok_or_else(|| FlowError::Measurement {
            what: format!("supply source {source} has no solved branch current"),
        })
}

/// Bisects a monotone function of one bias voltage to hit `target` on a
/// measured node voltage — the "schematic designer sets the bias" step.
///
/// `apply` receives a candidate voltage and must return the measured value.
/// Returns the voltage after `iters` halvings of `[lo, hi]`.
pub(crate) fn bisect_bias<F>(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    iters: usize,
    mut apply: F,
) -> Result<f64, FlowError>
where
    F: FnMut(f64) -> Result<f64, FlowError>,
{
    let f_lo = apply(lo)?;
    let f_hi = apply(hi)?;
    let rising = f_hi > f_lo;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let v = apply(mid)?;
        let high_side = if rising { v > target } else { v < target };
        if high_side {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_target_on_monotone_function() {
        // f(v) = 2v, target 1.0 → v = 0.5.
        let v = bisect_bias(0.0, 1.0, 1.0, 40, |x| Ok(2.0 * x)).unwrap();
        assert!((v - 0.5).abs() < 1e-9);
        // Falling function.
        let v = bisect_bias(0.0, 1.0, 1.0, 40, |x| Ok(2.0 - 2.0 * x)).unwrap();
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn spec_net_and_tap_queries() {
        let spec = CircuitSpec {
            name: "t".into(),
            instances: vec![
                PrimitiveInst::new(
                    "a",
                    "cs_amp",
                    8,
                    &[("out", "n1"), ("in", "n2"), ("vss", "g")],
                ),
                PrimitiveInst::new(
                    "b",
                    "csrc_pmos",
                    8,
                    &[("out", "n1"), ("vb", "n3"), ("vdd", "vdd")],
                ),
            ],
            symmetry: vec![],
            symmetric_nets: vec![],
        };
        let nets = spec.nets();
        assert!(nets.contains(&"n1".to_string()));
        let taps = spec.taps("n1");
        assert_eq!(taps.len(), 2);
        assert_eq!(taps[0].1, "out");
    }
}
