//! Assembles [`prima_erc::ErcArtifacts`] from a finished flow.
//!
//! The electrical gate is data-starved on purpose: `prima-erc` checks
//! plain currents, resistances, and positions, and this module is the one
//! place that derives them from flow state — worst-case net currents from
//! the primitive bias records, supply taps from the synthesized power
//! grid plus cell-internal extraction, symmetry declarations from the
//! circuit spec, and port/net bindings from the instance connection maps.

use std::collections::HashMap;

use prima_core::diagnostics::VerifyReport;
use prima_erc::{
    check_erc, CentroidGroup, ErcArtifacts, NetCurrent, PortTap, SupplyTap, SymmetryPair,
};
use prima_geom::{Point, Rect};
use prima_layout::{PlacementPattern, PrimitiveLayout, PrimitiveSpec};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_route::power::PowerReport;
use prima_route::RoutingResult;

use crate::circuits::CircuitSpec;
use crate::flows::is_power_net;

/// Nominal supply current (A) assumed for an instance with no
/// operating-point record (passives, unknown defs).
const DEFAULT_BLOCK_A: f64 = 150e-6;

/// `true` when `port` reaches only transistor gates inside the primitive:
/// it conducts no DC current.
pub(crate) fn gate_only_port(spec: &PrimitiveSpec, port: &str) -> bool {
    let gates = spec.devices.iter().any(|d| d.gate == port);
    let conducts = spec
        .devices
        .iter()
        .any(|d| d.drain == port || d.source == port);
    gates && !conducts
}

/// Worst-case DC current bound (A) through one conducting primitive port:
/// the instance's branch current scaled by the largest mirror ratio among
/// the devices whose channel touches the port. Gate-only ports carry
/// nothing.
pub(crate) fn port_current_a(spec: &PrimitiveSpec, bias: &Bias, port: &str) -> f64 {
    let base = bias.i("tail", bias.i("ref", DEFAULT_BLOCK_A));
    spec.devices
        .iter()
        .filter(|d| d.drain == port || d.source == port)
        .map(|d| base * d.ratio as f64)
        .fold(0.0, f64::max)
}

/// Worst-case current bound (A) of one instance's connection to a net,
/// maximized over every port the instance puts on that net.
fn instance_net_current(
    tech: &Technology,
    lib: &Library,
    biases: &HashMap<String, Bias>,
    inst: &crate::builder::PrimitiveInst,
    net: &str,
) -> f64 {
    let Some(def) = lib.get(&inst.def) else {
        return DEFAULT_BLOCK_A;
    };
    if def.spec.devices.is_empty() {
        return DEFAULT_BLOCK_A;
    }
    let bias = biases
        .get(&inst.name)
        .cloned()
        .unwrap_or_else(|| Bias::nominal(tech, &def.class));
    inst.conn
        .iter()
        .filter(|(_, n)| n.as_str() == net)
        .map(|(port, _)| port_current_a(&def.spec, &bias, port))
        .fold(0.0, f64::max)
}

/// Per-net worst-case currents with per-pin budgets, aligned with the
/// routing pins the placer produced (one pin per distinct instance on the
/// net, in first-tap order — the same dedup rule `place_and_route` uses).
pub(crate) fn net_currents(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    pins: &[(String, Vec<Point>)],
) -> Vec<NetCurrent> {
    let mut out = Vec::new();
    for (net, points) in pins {
        let mut order: Vec<&str> = Vec::new();
        let mut bounds: Vec<f64> = Vec::new();
        for (inst, _) in spec.taps(net) {
            if order.contains(&inst.name.as_str()) {
                continue;
            }
            order.push(&inst.name);
            bounds.push(instance_net_current(tech, lib, biases, inst, net));
        }
        let worst = bounds.iter().fold(0.0f64, |a, &b| a.max(b));
        if worst <= 0.0 {
            continue; // gate-only net: no DC current to check
        }
        let taps = if bounds.len() == points.len() {
            points.iter().copied().zip(bounds).collect()
        } else {
            Vec::new() // shape mismatch: fall back to the net-wide bound
        };
        out.push(NetCurrent {
            net: net.clone(),
            worst_a: worst,
            taps,
        });
    }
    out
}

/// Everything a flow hands to the electrical gate.
pub(crate) struct ErcBuild<'a> {
    pub tech: &'a Technology,
    pub lib: &'a Library,
    pub spec: &'a CircuitSpec,
    /// Operating points; `None` when the flow has none (the conventional
    /// baseline performs no electrical evaluation at all).
    pub biases: Option<&'a HashMap<String, Bias>>,
    pub routing: Option<&'a RoutingResult>,
    /// Reconciled parallel-route count per net (post EM clamp).
    pub widths: &'a HashMap<String, u32>,
    /// Routed pin positions per net.
    pub pins: &'a [(String, Vec<Point>)],
    /// Placed outlines — per instance (hierarchical) or per device (flat).
    pub rects: &'a [(String, Rect)],
    /// Generated layout per instance, for internal supply extraction and
    /// centroid data.
    pub layouts: &'a HashMap<String, PrimitiveLayout>,
    /// Synthesized power grid, when one exists.
    pub power: Option<&'a PowerReport>,
    /// Run the EM pass (only meaningful when Algorithm 2 chose widths —
    /// ablated and baseline flows have no current-aware wires to check).
    pub with_currents: bool,
    /// Check placer symmetry pairs (the flat baseline never places
    /// mirrored units, so it makes no matching claims to verify).
    pub with_symmetry: bool,
}

/// Derives the full artifact bundle and runs every electrical check.
pub(crate) fn erc_report(b: &ErcBuild<'_>) -> VerifyReport {
    let mut art = ErcArtifacts::new(&b.spec.name, b.tech);
    art.routing = b.routing;
    art.net_widths = b.widths.clone();

    if b.with_currents {
        if let Some(biases) = b.biases {
            art.net_currents = net_currents(b.tech, b.lib, b.spec, biases, b.pins);
        }
    }

    // Supply taps: grid feed drop per placed block (power synthesis order
    // is placement order) + the cell-internal access resistance of every
    // port tied to a rail.
    if let Some(power) = b.power {
        for (i, (name, _)) in b.rects.iter().enumerate() {
            let Some(inst) = b.spec.instances.iter().find(|x| x.name == *name) else {
                continue;
            };
            let grid_drop = power.block_drops.get(i).copied().unwrap_or(0.0);
            let bias = b.biases.and_then(|m| m.get(name));
            let current = match bias {
                Some(bb) => bb.i("tail", bb.i("ref", DEFAULT_BLOCK_A)),
                None => DEFAULT_BLOCK_A,
            };
            let mut supply_ports: Vec<(&str, &str)> = inst
                .conn
                .iter()
                .filter(|(_, net)| is_power_net(net))
                .map(|(p, n)| (p.as_str(), n.as_str()))
                .collect();
            supply_ports.sort_unstable();
            for (port, net) in supply_ports {
                let internal_r = b
                    .layouts
                    .get(name)
                    .and_then(|l| l.net_parasitics(port).ok())
                    .map_or(0.0, |p| p.r_access_ohm);
                art.supply.push(SupplyTap {
                    instance: name.clone(),
                    net: net.to_string(),
                    current_a: current,
                    grid_drop_v: grid_drop,
                    internal_r_ohm: internal_r,
                });
            }
        }
        art.tap_rows = power.strap_rows.clone();
    }

    art.outlines = b.rects.to_vec();
    if b.with_symmetry {
        art.pairs = b
            .spec
            .symmetry
            .iter()
            .map(|(a, bb)| SymmetryPair {
                a: a.clone(),
                b: bb.clone(),
            })
            .collect();
        art.centroid_groups = centroid_groups(b.spec, b.layouts);
    }

    // Port/net bindings for the hygiene checks, in a stable order.
    for inst in &b.spec.instances {
        let def = b.lib.get(&inst.def);
        let mut conns: Vec<(&str, &str)> = inst
            .conn
            .iter()
            .map(|(p, n)| (p.as_str(), n.as_str()))
            .collect();
        conns.sort_unstable();
        for (port, net) in conns {
            let gate_only = def.map(|d| gate_only_port(&d.spec, port)).unwrap_or(false);
            art.port_taps.push(PortTap {
                instance: inst.name.clone(),
                port: port.to_string(),
                net: net.to_string(),
                is_gate_only: gate_only,
            });
        }
        if let Some(def) = def {
            if !def.spec.devices.is_empty() {
                art.declared_ports
                    .push((inst.name.clone(), def.ports.clone()));
            }
        }
    }

    // The spec carries no explicit pin list, so externally-driven nets are
    // derived: a net every instance touches only with gates must be driven
    // from outside (inputs, clocks, bias pins) — exactly the nets the
    // floating-gate rule would otherwise flag.
    let mut by_net: HashMap<&str, bool> = HashMap::new();
    for tap in &art.port_taps {
        let e = by_net.entry(tap.net.as_str()).or_insert(true);
        *e &= tap.is_gate_only;
    }
    art.external_nets = by_net
        .into_iter()
        .filter(|&(_, all_gate)| all_gate)
        .map(|(n, _)| n.to_string())
        .collect();
    art.external_nets.sort_unstable();

    check_erc(&art)
}

/// Common-centroid groups the generated layouts actually claim: ABBA cells
/// whose every device has an even finger count (with an odd count the two
/// halves are inherently unbalanced by half a pitch, so the pattern makes
/// no coincidence claim to verify).
fn centroid_groups(
    spec: &CircuitSpec,
    layouts: &HashMap<String, PrimitiveLayout>,
) -> Vec<CentroidGroup> {
    let mut out = Vec::new();
    for inst in &spec.instances {
        let Some(layout) = layouts.get(&inst.name) else {
            continue;
        };
        if layout.config.pattern != PlacementPattern::Abba || layout.devices.len() < 2 {
            continue;
        }
        let balanced = layout
            .devices
            .iter()
            .all(|d| (layout.config.nf as u64 * ratio_of(layout, &d.name)).is_multiple_of(2));
        if !balanced {
            continue;
        }
        out.push(CentroidGroup {
            instance: inst.name.clone(),
            centroids: layout
                .devices
                .iter()
                .map(|d| (d.name.clone(), d.centroid_x_nm))
                .collect(),
        });
    }
    out
}

/// A device's finger-count ratio; layouts carry geometry, not the spec, so
/// the ratio is recovered from the relative effective widths.
fn ratio_of(layout: &PrimitiveLayout, device: &str) -> u64 {
    let min_w = layout
        .devices
        .iter()
        .map(|d| d.w_m)
        .fold(f64::INFINITY, f64::min);
    let Some(d) = layout.devices.iter().find(|d| d.name == device) else {
        return 1;
    };
    if min_w > 0.0 && min_w.is_finite() {
        (d.w_m / min_w).round().max(1.0) as u64
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_layout::DeviceSpec;
    use prima_spice::devices::FetPolarity;

    fn dp_spec() -> PrimitiveSpec {
        PrimitiveSpec::new(
            "dp",
            vec![
                DeviceSpec::new("MA", FetPolarity::Nmos, "da", "ga", "s"),
                DeviceSpec::new("MB", FetPolarity::Nmos, "db", "gb", "s"),
            ],
        )
    }

    #[test]
    fn gate_ports_conduct_nothing_and_channels_carry_the_branch() {
        let spec = dp_spec();
        assert!(gate_only_port(&spec, "ga"));
        assert!(!gate_only_port(&spec, "da"));
        assert!(!gate_only_port(&spec, "s"));

        let tech = Technology::finfet7();
        let mut bias = Bias::nominal(&tech, &prima_primitives::PrimitiveClass::DifferentialPair);
        bias.set_i("tail", 700e-6);
        assert_eq!(port_current_a(&spec, &bias, "ga"), 0.0);
        assert!((port_current_a(&spec, &bias, "s") - 700e-6).abs() < 1e-12);
    }

    #[test]
    fn mirror_ratio_scales_the_port_bound() {
        let spec = PrimitiveSpec::new(
            "cm",
            vec![
                DeviceSpec::new("MREF", FetPolarity::Nmos, "in", "in", "vss"),
                DeviceSpec::with_ratio("MOUT", FetPolarity::Nmos, "out", "in", "vss", 2),
            ],
        );
        let tech = Technology::finfet7();
        let mut bias = Bias::nominal(
            &tech,
            &prima_primitives::PrimitiveClass::CurrentMirror { ratio: 2 },
        );
        bias.set_i("ref", 200e-6);
        assert!((port_current_a(&spec, &bias, "out") - 400e-6).abs() < 1e-12);
        assert!((port_current_a(&spec, &bias, "in") - 200e-6).abs() < 1e-12);
        // vss sees both channels: bounded by the larger.
        assert!((port_current_a(&spec, &bias, "vss") - 400e-6).abs() < 1e-12);
    }
}
