//! GDS-II stream-out stage: folding a finished flow's geometry into a
//! [`prima_gds::GdsDesign`] and serializing it.
//!
//! Runs only under [`crate::GdsPolicy::On`], strictly after the verify and
//! ERC gates pass — the stream a caller receives is always gate-clean. Each
//! placed instance becomes its own GDS structure (re-rendered mask geometry
//! via [`prima_layout::render`], the same drawn rectangles the DRC pass
//! checked), referenced from a top structure that also carries the routed
//! track rectangles, the design outline, and one TEXT pin label per routed
//! net so layout viewers show named pins.

use std::collections::HashMap;

use prima_gds::{stream_out, GdsArtifact, GdsCellDef, GdsDesign, GdsLabel, GdsPlacement};
use prima_geom::{Point, Rect};
use prima_layout::{render, MaskLayer, PrimitiveLayout};
use prima_pdk::{RouteDir, Technology};
use prima_primitives::Library;
use prima_route::detail::DetailedResult;

use crate::circuits::CircuitSpec;
use crate::FlowError;

/// Everything the stream-out stage reads, borrowed from the flow's
/// success path just before the outcome is assembled.
pub(crate) struct GdsCtx<'a> {
    pub tech: &'a Technology,
    pub lib: &'a Library,
    pub spec: &'a CircuitSpec,
    /// Chosen layout variant per instance (empty for the flat flow).
    pub chosen: &'a HashMap<String, PrimitiveLayout>,
    /// Placed outline per block, in placement order.
    pub rects: &'a [(String, Rect)],
    /// Pin positions per routed net.
    pub pins: &'a [(String, Vec<Point>)],
    /// Placement bounding box (the top-structure outline).
    pub bbox: Rect,
    /// Detailed-routing track assignment.
    pub detailed: &'a DetailedResult,
}

/// Resolves a rendered [`MaskLayer`] to the stack-layer name the deck's
/// layer map is keyed by. The cell renderer's M1/M2 are the two lowest
/// routing metals of the stack, whatever the deck calls them.
fn mask_layer_name(tech: &Technology, layer: MaskLayer) -> String {
    match layer {
        MaskLayer::Diffusion => "diff".to_string(),
        MaskLayer::Fin => "fin".to_string(),
        MaskLayer::Poly => "poly".to_string(),
        MaskLayer::DummyPoly => "dummy_poly".to_string(),
        MaskLayer::Boundary => "boundary".to_string(),
        MaskLayer::M1 => metal_name(tech, 0),
        MaskLayer::M2 => metal_name(tech, 1),
    }
}

fn metal_name(tech: &Technology, index: usize) -> String {
    tech.metals
        .get(index)
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "boundary".to_string())
}

/// Builds the [`GdsDesign`] for a finished flow. Pure assembly — every
/// name stays in prima vocabulary; the emitter resolves them through the
/// deck's layer map.
pub(crate) fn build_design(ctx: &GdsCtx<'_>) -> GdsDesign {
    let mut cells = Vec::with_capacity(ctx.rects.len());
    let mut placements = Vec::with_capacity(ctx.rects.len());
    for (name, outline) in ctx.rects {
        // Re-render the chosen variant's mask geometry (the verify gate's
        // idiom). Flat-flow blocks and passives have none; they become
        // outline-only structures so the hierarchy stays complete.
        let geometry = ctx
            .spec
            .instances
            .iter()
            .find(|i| &i.name == name)
            .and_then(|inst| {
                ctx.chosen.get(name).and_then(|layout| {
                    ctx.lib
                        .get(&inst.def)
                        .and_then(|def| render(ctx.tech, &def.spec, &layout.config).ok())
                })
            });
        match geometry {
            Some(geom) => {
                cells.push(GdsCellDef {
                    name: name.clone(),
                    rects: geom
                        .rects
                        .iter()
                        .map(|(l, r)| (mask_layer_name(ctx.tech, *l), *r))
                        .collect(),
                });
                // SREF origin maps the rendered cell's lower-left corner
                // onto the placed outline's — robust to renders whose
                // local bbox does not start at the origin.
                placements.push(GdsPlacement {
                    cell: name.clone(),
                    at: Point::new(outline.lo.x - geom.bbox.lo.x, outline.lo.y - geom.bbox.lo.y),
                });
            }
            None => {
                cells.push(GdsCellDef {
                    name: name.clone(),
                    rects: vec![(
                        "boundary".to_string(),
                        Rect::from_size(Point::new(0, 0), outline.width(), outline.height()),
                    )],
                });
                placements.push(GdsPlacement {
                    cell: name.clone(),
                    at: outline.lo,
                });
            }
        }
    }

    // Routed tracks as drawn metal rectangles: one minimum-width wire per
    // occupied track, centred on the track grid, spanning the assignment.
    let mut top_rects = vec![("boundary".to_string(), ctx.bbox)];
    for a in &ctx.detailed.assignments {
        let Some(metal) = a.layer.checked_sub(1).and_then(|i| ctx.tech.metals.get(i)) else {
            continue;
        };
        let (s0, s1) = (a.span.0.min(a.span.1), a.span.0.max(a.span.1));
        for &t in &a.tracks {
            let cross = t * metal.pitch;
            let (lo, hi) = (cross - metal.min_width / 2, cross + metal.min_width / 2);
            let rect = match metal.dir {
                RouteDir::Horizontal => Rect::new(Point::new(s0, lo), Point::new(s1, hi)),
                RouteDir::Vertical => Rect::new(Point::new(lo, s0), Point::new(hi, s1)),
            };
            top_rects.push((metal.name.clone(), rect));
        }
    }

    // One pin label per routed net, anchored at its first pin, on the
    // lowest routing metal — enough for KLayout to show named pins.
    let label_layer = metal_name(ctx.tech, 0);
    let labels = ctx
        .pins
        .iter()
        .filter_map(|(net, points)| {
            points.first().map(|p| GdsLabel {
                text: net.clone(),
                at: *p,
                layer: label_layer.clone(),
            })
        })
        .collect();

    GdsDesign {
        name: ctx.spec.name.clone(),
        cells,
        placements,
        top_rects,
        labels,
    }
}

/// Builds and serializes the design, wrapping emitter failures in
/// [`FlowError::Gds`].
pub(crate) fn stream_out_stage(ctx: &GdsCtx<'_>) -> Result<GdsArtifact, FlowError> {
    stream_out(ctx.tech, &build_design(ctx)).map_err(FlowError::Gds)
}
