//! # prima-flow
//!
//! End-to-end hierarchical analog layout flows over the prima substrates,
//! reproducing the paper's evaluation (§IV):
//!
//! * **Benchmark circuits** ([`circuits`]) — the common-source amplifier of
//!   Fig. 2/Table I, the high-frequency five-transistor OTA, the StrongARM
//!   comparator, and the eight-stage differential RO-VCO, each expressed as
//!   primitive instances plus a circuit-level testbench.
//! * **Flows** ([`flows`]) — `optimized` (this work: primitive selection →
//!   tuning → placement → global routing → port optimization),
//!   `conventional` (geometry-only: default cells, single wires), and a
//!   `manual` proxy (extended search standing in for expert layout; see
//!   DESIGN.md for the substitution argument).
//! * **Assembly** ([`builder`]) — expands primitive instances (schematic or
//!   extracted layouts) into one flat simulator circuit, inserting
//!   global-route RC on the top-level nets and supply IR resistance.
//! * **Preflight** ([`preflight`]) — the schematic static-analysis gate
//!   (prima-schem) every flow runs first: connectivity-graph lints, bias
//!   and sizing legality, topology recognition. A malformed request dies
//!   in microseconds with exact `SCHEM.*` rule ids instead of seconds
//!   into a cold optimization run.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod builder;
pub mod circuits;
mod corners;
mod electrical;
pub mod flows;
mod gds;
pub mod preflight;

use std::fmt;

use prima_core::OptError;
use prima_place::PlaceError;
use prima_primitives::EvalError;
use prima_route::RouteError;
use prima_spice::analysis::AnalysisError;
use prima_spice::measure::MeasureError;
use prima_spice::netlist::SpiceError;

pub use builder::{build_circuit, PrimitiveInst, Realization};
pub use flows::{
    conventional_flow, manual_flow, optimized_flow, optimized_flow_resilient, optimized_flow_with,
    FlowKind, FlowOptions, FlowOutcome, GdsPolicy, VerifyPolicy,
};
pub use preflight::{schem_preflight, techlint_preflight};
pub use prima_cache::{CacheHub, CachePolicy, CacheStats, Namespace};
pub use prima_core::{
    CancelReason, CancelToken, Cancelled, FaultPlan, Health, RepairBudgets, RequestReport,
    ResilienceReport, ServeOutcome, ServeReport, SolverLimits,
};
pub use prima_corners::{
    corner_bias, instance_fingerprint, CornerMeasure, CornerOptions, CornerPolicy, CornerReport,
    InstanceCorners, McYield, MismatchDraw, MismatchSampler,
};
pub use prima_gds::{GdsArtifact, GdsError, GdsLibrary};

/// Errors from circuit assembly and flow execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A referenced primitive is missing from the library.
    UnknownPrimitive {
        /// The missing library key.
        name: String,
    },
    /// An instance connection references a port the primitive lacks.
    BadConnection {
        /// Instance name.
        instance: String,
        /// The offending port.
        port: String,
    },
    /// Netlist construction failed.
    Spice(SpiceError),
    /// Simulation failed.
    Analysis(AnalysisError),
    /// Primitive evaluation failed.
    Eval(EvalError),
    /// The optimization step failed.
    Opt(OptError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed.
    Route(RouteError),
    /// A circuit-level measurement could not be extracted.
    Measurement {
        /// What failed.
        what: String,
    },
    /// Cell generation produced no layout candidates for an instance.
    NoCandidates {
        /// The instance with an empty candidate set.
        instance: String,
    },
    /// The static verification gate found violations.
    Verify {
        /// Circuit that failed verification.
        circuit: String,
        /// Total violation count.
        violations: usize,
        /// The first violation, formatted.
        first: String,
    },
    /// The bounded repair loop ran out of attempts or fallback candidates
    /// without producing a gate-clean layout.
    RepairExhausted {
        /// Circuit whose repair failed.
        circuit: String,
        /// Stage that exhausted its budget ("routing" or "gate").
        stage: String,
        /// Attempts spent before giving up.
        attempts: u32,
        /// The last failure, formatted.
        last: String,
    },
    /// The flow's [`CancelToken`] tripped — an explicit cancel or an
    /// expired wall-clock deadline — and the run was abandoned at the next
    /// cooperative checkpoint. Never retried by the serving layer.
    Cancelled(Cancelled),
    /// GDS-II stream-out failed after the gates passed — an unmapped
    /// layer, a coordinate off the 32-bit database grid, or a unit size
    /// outside `real8` range. Only reachable with [`GdsPolicy::On`].
    Gds(prima_gds::GdsError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::UnknownPrimitive { name } => write!(f, "unknown primitive {name}"),
            FlowError::BadConnection { instance, port } => {
                write!(f, "instance {instance} connects missing port {port}")
            }
            FlowError::Spice(e) => write!(f, "netlist: {e}"),
            FlowError::Analysis(e) => write!(f, "analysis: {e}"),
            FlowError::Eval(e) => write!(f, "evaluation: {e}"),
            FlowError::Opt(e) => write!(f, "optimization: {e}"),
            FlowError::Place(e) => write!(f, "placement: {e}"),
            FlowError::Route(e) => write!(f, "routing: {e}"),
            FlowError::Measurement { what } => write!(f, "measurement: {what}"),
            FlowError::NoCandidates { instance } => {
                write!(f, "no layout candidates generated for instance {instance}")
            }
            FlowError::Verify {
                circuit,
                violations,
                first,
            } => write!(
                f,
                "verification: {circuit} has {violations} violation(s), first: {first}"
            ),
            FlowError::RepairExhausted {
                circuit,
                stage,
                attempts,
                last,
            } => write!(
                f,
                "repair exhausted: {circuit} {stage} failed after {attempts} attempt(s), last: {last}"
            ),
            FlowError::Cancelled(c) => write!(f, "flow abandoned: {c}"),
            FlowError::Gds(e) => write!(f, "gds stream-out: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<SpiceError> for FlowError {
    fn from(e: SpiceError) -> Self {
        FlowError::Spice(e)
    }
}
impl From<AnalysisError> for FlowError {
    fn from(e: AnalysisError) -> Self {
        // Cancellation is control flow, not an analysis failure: surface it
        // as such so the serving layer never classifies it as retryable.
        match e {
            AnalysisError::Cancelled(c) => FlowError::Cancelled(c),
            e => FlowError::Analysis(e),
        }
    }
}
impl From<EvalError> for FlowError {
    fn from(e: EvalError) -> Self {
        if let EvalError::Analysis(AnalysisError::Cancelled(c)) = &e {
            return FlowError::Cancelled(*c);
        }
        FlowError::Eval(e)
    }
}
impl From<OptError> for FlowError {
    fn from(e: OptError) -> Self {
        match e {
            OptError::Cancelled(c) => FlowError::Cancelled(c),
            e => FlowError::Opt(e),
        }
    }
}
impl From<Cancelled> for FlowError {
    fn from(c: Cancelled) -> Self {
        FlowError::Cancelled(c)
    }
}
impl From<PlaceError> for FlowError {
    fn from(e: PlaceError) -> Self {
        FlowError::Place(e)
    }
}
impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> Self {
        FlowError::Route(e)
    }
}
impl From<MeasureError> for FlowError {
    fn from(e: MeasureError) -> Self {
        FlowError::Measurement {
            what: e.to_string(),
        }
    }
}
