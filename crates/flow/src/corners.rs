//! The flow's variation stage: corner-aware candidate gating plus the
//! seeded Monte-Carlo yield estimate.
//!
//! Runs between Algorithm 1 (selection + tuning) and placement. Every
//! live bin's active candidate is re-evaluated across the enabled corner
//! set and gated on *worst-case* satisfaction; the gate is
//! corner-relative — the schematic reference is recomputed at each corner,
//! so the cost measures the layout-induced degradation *at that corner*
//! rather than the corner's raw metric shift (which even a perfect layout
//! cannot avoid). The allowance mirrors the selection stage's quality
//! guard: `max(alpha × nominal cost, nominal cost + beta)`.
//!
//! A candidate that fails only at a corner is repaired exactly like a
//! gate failure: its evaluation is ledgered and the bin's cursor falls
//! back to the next-best candidate, under the explicit corner budget.
//! When the budget (or the bin) exhausts, the stage keeps the candidate
//! with the best worst-case margin seen, emits a degraded-severity
//! `CORNER.EXHAUSTED` diagnostic, and lets the flow continue — corner
//! trouble degrades an outcome, it never turns a placeable circuit into
//! an error. Cancellation is different: every corner and sample boundary
//! checkpoints the token, so serve deadlines unwind promptly.
//!
//! Technologies perturbed here change only model cards, supply, and
//! temperature, so each corner optimizer addresses the shared evaluation
//! cache under its own technology fingerprint: warm corner sweeps hit,
//! nominal entries are never aliased.

use std::collections::HashMap;
use std::sync::Arc;

use prima_cache::EvalCache;
use prima_core::{
    CancelToken, EvalLedger, OptError, Optimizer, Phase, ResilienceReport, RuleKind, Severity,
    SimCounter, SolverLimits, Violation,
};
use prima_corners::{
    corner_bias, instance_fingerprint, CornerMeasure, CornerOptions, CornerReport, InstanceCorners,
    McYield, MismatchSampler,
};
use prima_layout::PrimitiveLayout;
use prima_pdk::{CornerSpec, Technology};
use prima_primitives::{Bias, Library, MetricValues, PrimitiveDef};

use crate::flows::{checkpoint, tuned_candidate, InstState};
use crate::FlowError;

/// Relative 1-sigma of the Monte-Carlo mobility (kp) scale. The decks
/// carry a Pelgrom coefficient for V_th but none for beta; 1% is the
/// standard order for current-factor mismatch at these device sizes.
const SIGMA_MOBILITY: f64 = 0.01;

/// Everything the stage borrows from the running flow.
pub(crate) struct CornerCtx<'a, 't> {
    /// Nominal technology.
    pub tech: &'t Technology,
    /// Primitive library.
    pub lib: &'a Library,
    /// The nominal optimizer (fallback candidates re-tune at nominal).
    pub opt: &'a Optimizer<'t>,
    /// Sweep options.
    pub copts: &'a CornerOptions,
    /// Whether tuning is enabled (fallback candidates follow the flow).
    pub tuning: bool,
    /// Solver limits corner evaluations run under (same as nominal).
    pub solver: &'a SolverLimits,
    /// Shared evaluation cache, if the flow opened one.
    pub cache: Option<Arc<EvalCache>>,
    /// Cooperative cancellation handle.
    pub cancel: &'a Option<CancelToken>,
}

impl CornerCtx<'_, '_> {
    /// An optimizer over a perturbed deck sharing this flow's cache,
    /// solver limits, cancel token, and simulation counter.
    fn perturbed_opt<'p>(&self, tech: &'p Technology, counter: &SimCounter) -> Optimizer<'p> {
        let mut o = Optimizer::new(tech);
        if let Some(cache) = &self.cache {
            o.set_cache(cache.clone());
        }
        o.set_solver_limits(self.solver.clone());
        if let Some(token) = self.cancel {
            o.set_cancel(token.clone());
        }
        o.set_counter(counter.clone());
        o
    }
}

/// A degraded-severity lint for one corner incident.
fn corner_violation(rule_id: &str, scope: &str, message: String) -> Violation {
    Violation {
        rule_id: rule_id.to_string(),
        kind: RuleKind::Lint,
        severity: Severity::Degraded,
        layer: None,
        scope: Some(scope.to_string()),
        rects: Vec::new(),
        found: None,
        required: None,
        message,
    }
}

/// Cost of one layout against the *corner's own* schematic reference.
/// `Ok(f64::INFINITY)` is a corner failure (non-convergence or any other
/// evaluation error at the corner); cancellation unwinds as an error.
fn eval_at(
    opt_c: &Optimizer,
    def: &PrimitiveDef,
    bias_c: &Bias,
    sch_c: &MetricValues,
    layout: &PrimitiveLayout,
) -> Result<f64, FlowError> {
    match opt_c.evaluate_layout(def, bias_c, layout.clone(), sch_c, Phase::Corners) {
        Ok(e) => Ok(e.cost),
        Err(OptError::Cancelled(c)) => Err(FlowError::Cancelled(c)),
        Err(_) => Ok(f64::INFINITY),
    }
}

/// The corner's schematic reference, or `None` when the corner itself
/// fails to converge at the schematic level (every candidate then fails
/// this corner). Cancellation unwinds as an error.
fn schematic_at(
    opt_c: &Optimizer,
    def: &PrimitiveDef,
    bias_c: &Bias,
    total_fins: u64,
) -> Result<Option<MetricValues>, FlowError> {
    match opt_c.schematic_reference_at(def, bias_c, total_fins, Phase::Corners) {
        Ok(v) => Ok(Some(v)),
        Err(OptError::Cancelled(c)) => Err(FlowError::Cancelled(c)),
        Err(_) => Ok(None),
    }
}

/// One corner's prepared evaluation environment.
struct CornerEnv {
    spec: CornerSpec,
    tech: Technology,
}

/// The measures of one candidate across the corner environments, plus the
/// worst margin and first failing corner.
struct SweepResult {
    measures: Vec<CornerMeasure>,
    worst_margin: f64,
    worst_corner: String,
    failed_at: Option<String>,
}

/// Runs the corner gating + Monte-Carlo stage over the selection states.
/// Mutates the states' cursors/active candidates through corner repair;
/// never fails except on cancellation or a missing library definition.
pub(crate) fn corner_stage(
    ctx: &CornerCtx<'_, '_>,
    states: &mut [(String, InstState)],
    ledger: &mut EvalLedger,
    resilience: &mut ResilienceReport,
) -> Result<CornerReport, FlowError> {
    let copts = ctx.copts;
    let counter = ctx.opt.counter().clone();
    let mut diagnostics: Vec<Violation> = Vec::new();

    // Resolve the enabled corner list against the deck's table. Unknown
    // names degrade (the rest of the sweep still runs) rather than error.
    let table = &ctx.tech.corners;
    let envs: Vec<CornerEnv> = match &copts.corners {
        None => table.corners.clone(),
        Some(names) => names
            .iter()
            .filter_map(|n| match table.get(n) {
                Some(c) => Some(c.clone()),
                None => {
                    diagnostics.push(corner_violation(
                        "CORNER.UNKNOWN",
                        n,
                        format!(
                            "corner {n:?} is not in {}'s table ({:?}); skipped",
                            ctx.tech.name,
                            table.names()
                        ),
                    ));
                    None
                }
            })
            .collect(),
    }
    .into_iter()
    .map(|spec| CornerEnv {
        tech: ctx.tech.apply_corner(&spec),
        spec,
    })
    .collect();
    for v in &diagnostics {
        resilience.record("corners", &v.rule_id, v.message.clone());
    }

    let mut instances: Vec<InstanceCorners> = Vec::new();
    let mut total_fallbacks = 0usize;

    // ---- Worst-case corner gating with bounded candidate fallback -------
    // Instances sharing (def, sizing, bias) were selected together and
    // still share identical cursors here, so gating decisions computed for
    // the first member are replayed onto the rest (Monte-Carlo below stays
    // per-instance: draws are keyed by instance name).
    type GroupKey = (String, u64, Bias);
    // key -> (index into `instances`, representative state index)
    let mut done: Vec<(GroupKey, usize, usize)> = Vec::new();
    for si in 0..states.len() {
        checkpoint(ctx.cancel)?;
        let (name, st) = &states[si];
        let name = name.clone();
        let def = ctx
            .lib
            .get(&st.def)
            .ok_or_else(|| FlowError::UnknownPrimitive {
                name: st.def.clone(),
            })?;
        let total_fins = st
            .active
            .first()
            .map(|(l, _)| l.config.total_fins())
            .unwrap_or(0);
        let key: GroupKey = (st.def.clone(), total_fins, st.bias.clone());
        if let Some(&(_, idx, rep_si)) = done.iter().find(|(k, ..)| *k == key) {
            // Replay the representative's gating outcome onto this member:
            // same ranked bins, same bias — the gate decisions are
            // identical, so only the cursors/actives need copying.
            let rep = instances[idx].clone();
            let (cursor, active, dead) = {
                let (_, rs) = &states[rep_si];
                (rs.cursor.clone(), rs.active.clone(), rs.dead.clone())
            };
            let (_, st) = &mut states[si];
            st.cursor = cursor;
            st.active = active;
            st.dead = dead;
            instances.push(InstanceCorners {
                instance: name,
                ..rep
            });
            continue;
        }

        let (_, st) = &mut states[si];
        let live: Vec<usize> = (0..st.active.len()).filter(|&i| !st.dead[i]).collect();
        let mut inst_fallbacks = 0usize;
        // Per-bin gating; the instance's reported measures come from its
        // best-cost live bin after repair.
        let mut per_bin: HashMap<usize, SweepResult> = HashMap::new();
        for &bin in &live {
            let mut attempts = 0usize;
            // Best candidate seen in this bin by worst-case margin, for
            // restoration when the budget exhausts.
            let mut best: Option<(f64, (PrimitiveLayout, f64), SweepResult)> = None;
            loop {
                checkpoint(ctx.cancel)?;
                let nominal_cost = st.active[bin].1;
                let allowance = copts.allowance(nominal_cost);
                let sweep = sweep_candidate(
                    ctx,
                    &counter,
                    &envs,
                    def,
                    &st.bias,
                    total_fins,
                    &st.active[bin].0,
                    allowance,
                )?;
                // The current candidate's verdict decides whether to keep
                // repairing; `best` tracks the best worst-case margin seen
                // for restoration on exhaustion. A passing candidate always
                // wins (its worst margin is ≥ 0, a failing one's is < 0).
                let current_failed = sweep.failed_at.clone();
                if best.as_ref().is_none_or(|(m, ..)| sweep.worst_margin > *m) {
                    best = Some((sweep.worst_margin, st.active[bin].clone(), sweep));
                }
                let Some(fail_corner) = current_failed else {
                    break; // every corner passed
                };
                if attempts >= copts.repair_attempts {
                    // Budget exhausted: restore the best-margin candidate
                    // and degrade.
                    if let Some((_, cand, _)) = &best {
                        st.active[bin] = cand.clone();
                    }
                    let v = corner_violation(
                        "CORNER.EXHAUSTED",
                        &name,
                        format!(
                            "corner repair budget ({}) exhausted in bin {bin}: \
                             candidate still fails at corner {fail_corner:?}; \
                             keeping best worst-case candidate",
                            copts.repair_attempts
                        ),
                    );
                    resilience.record("corners", &v.rule_id, v.message.clone());
                    diagnostics.push(v);
                    break;
                }
                // Ledger the failing candidate and fall back.
                let cur = st.cursor.current(bin);
                if let Some(&cand) = st.bins[bin].candidates.get(cur) {
                    if !ledger.is_failed(&st.def, cand) {
                        ledger.record(
                            &st.def,
                            cand,
                            false,
                            format!("failed corner gate at {fail_corner:?}"),
                        );
                    }
                }
                let pairs = st.bins[bin].id_pairs(&st.def);
                match st.cursor.demote(bin, &pairs, ledger) {
                    Some(rank) => {
                        if let Some(pick) = st.bins[bin].ranked.get(rank) {
                            st.active[bin] = tuned_candidate(
                                ctx.opt, def, &st.bias, pick, ctx.tuning, resilience, &name,
                            );
                        }
                        attempts += 1;
                        inst_fallbacks += 1;
                        resilience.record(
                            "corners",
                            &name,
                            format!(
                                "corner gate failed at {fail_corner:?}; \
                                 bin {bin} fell back to rank {rank}"
                            ),
                        );
                    }
                    None => {
                        // Bin exhausted. Drop it if the instance keeps
                        // another live bin; otherwise restore and degrade.
                        let other_live = st.dead.iter().enumerate().any(|(i, d)| !d && i != bin);
                        if other_live {
                            st.dead[bin] = true;
                            resilience.record(
                                "corners",
                                &name,
                                format!(
                                    "corner gate failed at {fail_corner:?}; \
                                     bin {bin} exhausted, dropped"
                                ),
                            );
                        } else {
                            if let Some((_, cand, _)) = &best {
                                st.active[bin] = cand.clone();
                            }
                            let v = corner_violation(
                                "CORNER.EXHAUSTED",
                                &name,
                                format!(
                                    "all candidates in the last live bin {bin} fail at \
                                     corner {fail_corner:?}; keeping best worst-case candidate"
                                ),
                            );
                            resilience.record("corners", &v.rule_id, v.message.clone());
                            diagnostics.push(v);
                        }
                        break;
                    }
                }
            }
            if !st.dead[bin] {
                if let Some((_, _, sweep)) = best {
                    per_bin.insert(bin, sweep);
                }
            }
        }

        // Report the best-cost live bin's measures.
        let report_bin = (0..st.active.len())
            .filter(|&i| !st.dead[i] && per_bin.contains_key(&i))
            .min_by(|&a, &b| st.active[a].1.total_cmp(&st.active[b].1));
        let (measures, worst_margin, worst_corner, nominal_cost) = match report_bin {
            Some(bin) => {
                let s = &per_bin[&bin];
                (
                    s.measures.clone(),
                    s.worst_margin,
                    s.worst_corner.clone(),
                    st.active[bin].1,
                )
            }
            None => (Vec::new(), f64::INFINITY, String::new(), f64::NAN),
        };
        total_fallbacks += inst_fallbacks;
        done.push((key, instances.len(), si));
        instances.push(InstanceCorners {
            instance: name,
            def: st.def.clone(),
            nominal_cost,
            measures,
            worst_margin,
            worst_corner,
            fallbacks: inst_fallbacks,
            mc_passed: None,
        });
    }

    // ---- Seeded Monte-Carlo mismatch yield ------------------------------
    let mc = if copts.mc_samples > 0 {
        Some(run_mc(ctx, &counter, states, &mut instances)?)
    } else {
        None
    };

    let worst_margin = instances
        .iter()
        .map(|i| i.worst_margin)
        .fold(f64::INFINITY, f64::min);
    Ok(CornerReport {
        corners: envs.iter().map(|e| e.spec.name.clone()).collect(),
        instances,
        worst_margin,
        mc,
        sims: counter.count(Phase::Corners),
        diagnostics,
        fallbacks: total_fallbacks,
    })
}

/// Evaluates one candidate across all corner environments.
#[allow(clippy::too_many_arguments)]
fn sweep_candidate(
    ctx: &CornerCtx<'_, '_>,
    counter: &SimCounter,
    envs: &[CornerEnv],
    def: &PrimitiveDef,
    bias: &Bias,
    total_fins: u64,
    layout: &PrimitiveLayout,
    allowance: f64,
) -> Result<SweepResult, FlowError> {
    let mut measures = Vec::with_capacity(envs.len());
    let mut worst_margin = f64::INFINITY;
    let mut worst_corner = String::new();
    let mut failed_at = None;
    for env in envs {
        checkpoint(ctx.cancel)?;
        let opt_c = ctx.perturbed_opt(&env.tech, counter);
        let bias_c = corner_bias(ctx.tech, bias, &env.spec);
        let cost = match schematic_at(&opt_c, def, &bias_c, total_fins)? {
            Some(sch_c) => eval_at(&opt_c, def, &bias_c, &sch_c, layout)?,
            None => f64::INFINITY,
        };
        let margin = allowance - cost;
        let pass = cost <= allowance;
        if !pass && failed_at.is_none() {
            failed_at = Some(env.spec.name.clone());
        }
        if margin < worst_margin {
            worst_margin = margin;
            worst_corner = env.spec.name.clone();
        }
        measures.push(CornerMeasure {
            corner: env.spec.name.clone(),
            cost,
            margin,
            pass,
        });
    }
    Ok(SweepResult {
        measures,
        worst_margin,
        worst_corner,
        failed_at,
    })
}

/// Runs the per-instance mismatch samples and folds them into a circuit
/// yield: a sample passes when *every* instance passes its gate under its
/// own draw.
fn run_mc(
    ctx: &CornerCtx<'_, '_>,
    counter: &SimCounter,
    states: &[(String, InstState)],
    instances: &mut [InstanceCorners],
) -> Result<McYield, FlowError> {
    let copts = ctx.copts;
    let sampler = MismatchSampler::new(copts.mc_seed);
    let mut sample_pass = vec![true; copts.mc_samples as usize];
    for (name, st) in states {
        checkpoint(ctx.cancel)?;
        let def = ctx
            .lib
            .get(&st.def)
            .ok_or_else(|| FlowError::UnknownPrimitive {
                name: st.def.clone(),
            })?;
        // The instance's best live candidate is the one gated.
        let Some((layout, nominal_cost)) = (0..st.active.len())
            .filter(|&i| !st.dead[i])
            .min_by(|&a, &b| st.active[a].1.total_cmp(&st.active[b].1))
            .map(|i| (&st.active[i].0, st.active[i].1))
        else {
            continue;
        };
        let total_fins = layout.config.total_fins();
        let allowance = copts.allowance(nominal_cost);
        // Pelgrom sigma at this sizing (same geometry the offset
        // testbench uses for the schematic view).
        let sigma_vth = ctx.tech.variation.sigma_vth(
            ctx.tech.fin.weff_m((total_fins as u32).max(1)),
            ctx.tech.fin.gate_length as f64 * 1e-9,
        );
        let fp = instance_fingerprint(name, &st.def, total_fins);
        let mut passed = 0u32;
        for s in 0..copts.mc_samples {
            checkpoint(ctx.cancel)?;
            let draw = sampler.draw(fp, s);
            let mtech = ctx.tech.apply_mismatch(
                draw.z_vth * sigma_vth,
                (1.0 + SIGMA_MOBILITY * draw.z_mobility).clamp(0.5, 1.5),
            );
            let opt_m = ctx.perturbed_opt(&mtech, counter);
            let cost = match schematic_at(&opt_m, def, &st.bias, total_fins)? {
                Some(sch_m) => eval_at(&opt_m, def, &st.bias, &sch_m, layout)?,
                None => f64::INFINITY,
            };
            if cost <= allowance {
                passed += 1;
            } else {
                sample_pass[s as usize] = false;
            }
        }
        if let Some(inst) = instances.iter_mut().find(|i| i.instance == *name) {
            inst.mc_passed = Some(passed);
        }
    }
    Ok(McYield {
        seed: copts.mc_seed,
        samples: copts.mc_samples,
        passed: sample_pass.iter().filter(|p| **p).count() as u32,
    })
}
