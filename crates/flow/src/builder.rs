//! Flat-circuit assembly: primitive instances + top-level net wiring.
//!
//! Each primitive expands into its subcircuit (schematic devices, or
//! extracted layout with mesh parasitics and LDE shifts). Top-level nets
//! that carry global routes get a star RC: every connected port reaches the
//! net hub through half the route resistance, and the hub carries the route
//! capacitance. The supply rail sees a series IR resistance (the paper's
//! manually-routed power with IR degradation included).

use std::collections::HashMap;

use prima_layout::PrimitiveLayout;
use prima_pdk::Technology;
use prima_primitives::{as_subcircuit, ExternalWire, LayoutView, Library};
use prima_spice::netlist::Circuit;
use serde::{Deserialize, Serialize};

use crate::FlowError;

/// One primitive instance in a circuit: library key, sizing, connections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveInst {
    /// Instance name (also the layout block name).
    pub name: String,
    /// Library key of the primitive definition.
    pub def: String,
    /// Unit-device sizing (`nfin·nf·m` total fins).
    pub total_fins: u64,
    /// `(primitive port, top-level net)` pairs.
    pub conn: Vec<(String, String)>,
}

impl PrimitiveInst {
    /// Creates an instance from `(port, net)` string pairs.
    pub fn new(name: &str, def: &str, total_fins: u64, conn: &[(&str, &str)]) -> Self {
        PrimitiveInst {
            name: name.to_string(),
            def: def.to_string(),
            total_fins,
            conn: conn
                .iter()
                .map(|&(p, n)| (p.to_string(), n.to_string()))
                .collect(),
        }
    }

    /// The top-level net a port connects to.
    pub fn net_of(&self, port: &str) -> Option<&str> {
        self.conn
            .iter()
            .find(|(p, _)| p == port)
            .map(|(_, n)| n.as_str())
    }
}

/// How a circuit is physically realized: which instances have layouts, what
/// route RC sits on each net, and the supply IR resistance.
#[derive(Debug, Clone, Default)]
pub struct Realization {
    /// Extracted (and tuned) layout per instance; instances absent from the
    /// map are realized as ideal schematic devices.
    pub layouts: HashMap<String, PrimitiveLayout>,
    /// Global-route RC per top-level net (already scaled by the chosen
    /// parallel-route count).
    pub net_wires: HashMap<String, ExternalWire>,
    /// Series resistance in the supply rail (Ω).
    pub supply_r_ohm: f64,
}

impl Realization {
    /// The all-ideal realization (`x_sch` reference).
    pub fn schematic() -> Self {
        Self::default()
    }
}

/// Supply node the circuit testbenches drive; the internal rail `vdd` sits
/// behind the IR resistance.
pub const VDD_EXT: &str = "vdd_ext";

/// Assembles the flat simulator circuit.
///
/// # Errors
///
/// Returns [`FlowError::UnknownPrimitive`] / [`FlowError::BadConnection`]
/// for netlist mistakes and propagates evaluation errors.
pub fn build_circuit(
    tech: &Technology,
    lib: &Library,
    insts: &[PrimitiveInst],
    realization: &Realization,
) -> Result<Circuit, FlowError> {
    let mut top = Circuit::new();

    // Supply rail with IR drop: testbenches drive `vdd_ext`.
    let vdd_ext = top.node(VDD_EXT);
    let vdd = top.node("vdd");
    top.resistor("Rsupply", vdd_ext, vdd, realization.supply_r_ohm.max(1e-3))?;

    // Net hubs with route capacitance.
    for (net, wire) in &realization.net_wires {
        let hub = top.node(net);
        if wire.c_f > 0.0 {
            top.capacitor(&format!("Croute_{net}"), hub, Circuit::GROUND, wire.c_f)?;
        }
    }

    for inst in insts {
        let def = lib
            .get(&inst.def)
            .ok_or_else(|| FlowError::UnknownPrimitive {
                name: inst.def.clone(),
            })?;
        for (port, _) in &inst.conn {
            if !def.ports.contains(port) {
                return Err(FlowError::BadConnection {
                    instance: inst.name.clone(),
                    port: port.clone(),
                });
            }
        }
        let view = match realization.layouts.get(&inst.name) {
            Some(layout) => LayoutView::Layout(layout),
            None => LayoutView::Schematic {
                total_fins: inst.total_fins,
            },
        };
        let sub = as_subcircuit(tech, def, view)?;

        let mut ports: HashMap<String, prima_spice::netlist::NodeId> = HashMap::new();
        // PMOS bulks ride the internal supply rail.
        ports.insert("vdd!".to_string(), vdd);
        for (port, net) in &inst.conn {
            let node = if let Some(wire) = realization.net_wires.get(net) {
                // Star model: each tap reaches the hub through half the
                // route resistance.
                let hub = top.node(net);
                let tap = top.node(&format!("{net}@{}", inst.name));
                let r = (wire.r_ohm / 2.0).max(1e-3);
                // `instantiate` may be called for several ports on one net;
                // only add the tap resistor once per (net, inst).
                let rname = format!("Rroute_{net}_{}", inst.name);
                if !top.elements().iter().any(|e| e.name() == rname) {
                    top.resistor(&rname, tap, hub, r)?;
                }
                tap
            } else {
                top.node(net)
            };
            ports.insert(port.clone(), node);
        }
        top.instantiate(&inst.name, &sub, &ports)?;
    }
    Ok(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_spice::analysis::dc::DcSolver;

    fn tech() -> Technology {
        Technology::finfet7()
    }

    /// A tiny two-primitive circuit: current source load on a CS amp.
    fn amp_insts() -> Vec<PrimitiveInst> {
        vec![
            PrimitiveInst::new(
                "m1",
                "cs_amp",
                64,
                &[("in", "vin"), ("out", "vout"), ("vss", "gndnet")],
            ),
            PrimitiveInst::new(
                "m2",
                "csrc_pmos",
                96,
                &[("out", "vout"), ("vb", "vbp"), ("vdd", "vdd")],
            ),
        ]
    }

    #[test]
    fn builds_and_solves_schematic() {
        let tech = tech();
        let lib = Library::standard();
        let mut c = build_circuit(&tech, &lib, &amp_insts(), &Realization::schematic()).unwrap();
        // Drive it like a testbench would.
        let vdd_ext = c.find_node(VDD_EXT).unwrap();
        c.vsource("VDD", vdd_ext, Circuit::GROUND, 0.8);
        let vin = c.find_node("vin").unwrap();
        c.vsource("VIN", vin, Circuit::GROUND, 0.4);
        let vbp = c.find_node("vbp").unwrap();
        c.vsource("VBP", vbp, Circuit::GROUND, 0.45);
        let g = c.find_node("gndnet").unwrap();
        c.vsource("VGND", g, Circuit::GROUND, 0.0);
        let op = DcSolver::new().solve(&c).unwrap();
        let vout = op.voltage(c.find_node("vout").unwrap());
        assert!(vout > 0.0 && vout < 0.8, "vout = {vout}");
    }

    #[test]
    fn net_wires_insert_star_rc() {
        let tech = tech();
        let lib = Library::standard();
        let mut real = Realization::schematic();
        real.net_wires.insert(
            "vout".to_string(),
            ExternalWire {
                r_ohm: 100.0,
                c_f: 2e-15,
            },
        );
        let c = build_circuit(&tech, &lib, &amp_insts(), &real).unwrap();
        // Two taps (m1, m2) plus the hub cap and the supply resistor.
        let taps = c
            .elements()
            .iter()
            .filter(|e| e.name().starts_with("Rroute_vout"))
            .count();
        assert_eq!(taps, 2);
        assert!(c.find_node("vout@m1").is_some());
        assert!(c.elements().iter().any(|e| e.name() == "Croute_vout"));
    }

    #[test]
    fn supply_resistance_drops_rail() {
        let tech = tech();
        let lib = Library::standard();
        let mut real = Realization::schematic();
        real.supply_r_ohm = 50.0;
        let mut c = build_circuit(&tech, &lib, &amp_insts(), &real).unwrap();
        let vdd_ext = c.find_node(VDD_EXT).unwrap();
        c.vsource("VDD", vdd_ext, Circuit::GROUND, 0.8);
        let vin = c.find_node("vin").unwrap();
        c.vsource("VIN", vin, Circuit::GROUND, 0.45);
        let vbp = c.find_node("vbp").unwrap();
        c.vsource("VBP", vbp, Circuit::GROUND, 0.4);
        let g = c.find_node("gndnet").unwrap();
        c.vsource("VGND", g, Circuit::GROUND, 0.0);
        let op = DcSolver::new().solve(&c).unwrap();
        let rail = op.voltage(c.find_node("vdd").unwrap());
        assert!(rail < 0.8, "IR drop expected, rail = {rail}");
        assert!(rail > 0.7, "drop should be mV-scale, rail = {rail}");
    }

    #[test]
    fn unknown_primitive_and_bad_port() {
        let tech = tech();
        let lib = Library::standard();
        let bad = vec![PrimitiveInst::new("x", "nonexistent", 8, &[])];
        assert!(matches!(
            build_circuit(&tech, &lib, &bad, &Realization::schematic()),
            Err(FlowError::UnknownPrimitive { .. })
        ));
        let bad_port = vec![PrimitiveInst::new("x", "cs_amp", 8, &[("nonport", "n1")])];
        assert!(matches!(
            build_circuit(&tech, &lib, &bad_port, &Realization::schematic()),
            Err(FlowError::BadConnection { .. })
        ));
    }

    #[test]
    fn layout_realization_adds_parasitics() {
        use prima_layout::{generate, CellConfig, PlacementPattern};
        let tech = tech();
        let lib = Library::standard();
        let insts = amp_insts();
        let cs = lib.get("cs_amp").unwrap();
        let layout = generate(
            &tech,
            &cs.spec,
            &CellConfig::new(4, 4, 4, PlacementPattern::Abab),
        )
        .unwrap();
        let mut real = Realization::schematic();
        real.layouts.insert("m1".to_string(), layout);
        let with = build_circuit(&tech, &lib, &insts, &real).unwrap();
        let without = build_circuit(&tech, &lib, &insts, &Realization::schematic()).unwrap();
        assert!(with.elements().len() > without.elements().len());
    }
}
