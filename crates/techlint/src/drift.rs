//! Cross-deck drift analysis.
//!
//! When a tenant re-registers a technology (PDK refresh, recalibrated
//! models), two independent questions decide what survives:
//!
//! 1. **Does any cache entry survive?** The evaluation cache namespaces on
//!    the deck's content fingerprint, which feeds *every* field — so any
//!    change at all invalidates. [`TechDrift::cache_invalidating`] answers
//!    from the fingerprints, not the field diff, so it can never disagree
//!    with the cache.
//! 2. **Do generated layouts survive?** Only changes to geometry-bearing
//!    fields (fin grid, metal pitches/widths/directions, design rules)
//!    force regeneration; electrical recalibration (wire RC, via R, LDE,
//!    variation, model cards, EM/IR limits, supply) keeps drawn geometry
//!    legal and only requires re-simulation.
//!    [`TechDrift::layout_compatible`] classifies per field.

use prima_cache::Fingerprintable;
use prima_pdk::Technology;
use serde::{Deserialize, Serialize};

/// One changed field between two decks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftEntry {
    /// Dotted field path, e.g. `"metals[2].pitch"`.
    pub field: String,
    /// Value in the first deck.
    pub before: String,
    /// Value in the second deck.
    pub after: String,
    /// `true` when existing layouts remain legal under the change
    /// (electrical-only drift); `false` when geometry must be regenerated.
    pub layout_compatible: bool,
}

/// Field-level diff of two [`Technology`] values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechDrift {
    /// Every changed field, in declaration order.
    pub entries: Vec<DriftEntry>,
    /// Whether the content fingerprints differ (authoritative for caches).
    pub fingerprint_changed: bool,
}

impl TechDrift {
    /// `true` when the decks are byte-for-byte the same content.
    pub fn is_identical(&self) -> bool {
        self.entries.is_empty() && !self.fingerprint_changed
    }

    /// `true` when cached evaluation results keyed on the first deck must
    /// be discarded under the second.
    pub fn cache_invalidating(&self) -> bool {
        self.fingerprint_changed
    }

    /// `true` when layouts generated on the first deck remain legal on the
    /// second (possibly with different electrical behavior — re-simulate,
    /// don't regenerate).
    pub fn layout_compatible(&self) -> bool {
        self.entries.iter().all(|e| e.layout_compatible)
    }

    fn push<T: std::fmt::Debug + PartialEq>(
        &mut self,
        field: &str,
        before: &T,
        after: &T,
        layout_compatible: bool,
    ) {
        if before != after {
            self.entries.push(DriftEntry {
                field: field.to_string(),
                before: format!("{before:?}"),
                after: format!("{after:?}"),
                layout_compatible,
            });
        }
    }
}

/// Diffs two decks field by field and compares their content fingerprints.
pub fn diff_techs(before: &Technology, after: &Technology) -> TechDrift {
    let mut d = TechDrift {
        entries: Vec::new(),
        fingerprint_changed: before.fingerprint() != after.fingerprint(),
    };

    d.push("name", &before.name, &after.name, true);
    d.push("vdd", &before.vdd, &after.vdd, true);

    // Fin/poly grid: every field positions drawn shapes.
    let (fb, fa) = (&before.fin, &after.fin);
    d.push("fin.fin_pitch", &fb.fin_pitch, &fa.fin_pitch, false);
    d.push("fin.fin_width", &fb.fin_width, &fa.fin_width, false);
    d.push(
        "fin.weff_per_fin",
        &fb.weff_per_fin,
        &fa.weff_per_fin,
        false,
    );
    d.push("fin.poly_pitch", &fb.poly_pitch, &fa.poly_pitch, false);
    d.push("fin.gate_length", &fb.gate_length, &fa.gate_length, false);
    d.push(
        "fin.diff_extension",
        &fb.diff_extension,
        &fa.diff_extension,
        false,
    );
    d.push(
        "fin.cell_height_overhead",
        &fb.cell_height_overhead,
        &fa.cell_height_overhead,
        false,
    );
    d.push(
        "fin.cell_width_overhead",
        &fb.cell_width_overhead,
        &fa.cell_width_overhead,
        false,
    );

    // Metal stack: geometry fields break layouts, RC recalibration does not.
    if before.metals.len() != after.metals.len() {
        d.push(
            "metals.len",
            &before.metals.len(),
            &after.metals.len(),
            false,
        );
    } else {
        for (i, (mb, ma)) in before.metals.iter().zip(&after.metals).enumerate() {
            d.push(&format!("metals[{i}].name"), &mb.name, &ma.name, false);
            d.push(&format!("metals[{i}].dir"), &mb.dir, &ma.dir, false);
            d.push(&format!("metals[{i}].pitch"), &mb.pitch, &ma.pitch, false);
            d.push(
                &format!("metals[{i}].min_width"),
                &mb.min_width,
                &ma.min_width,
                false,
            );
            d.push(
                &format!("metals[{i}].r_ohm_per_um"),
                &mb.r_ohm_per_um,
                &ma.r_ohm_per_um,
                true,
            );
            d.push(
                &format!("metals[{i}].c_f_per_um"),
                &mb.c_f_per_um,
                &ma.c_f_per_um,
                true,
            );
        }
    }

    // Via electrical stack: a depth change is structural, values are not.
    if before.via_r.len() != after.via_r.len() {
        d.push("via_r.len", &before.via_r.len(), &after.via_r.len(), false);
    } else {
        for (i, (rb, ra)) in before.via_r.iter().zip(&after.via_r).enumerate() {
            d.push(&format!("via_r[{i}]"), rb, ra, true);
        }
    }
    d.push("via_c", &before.via_c, &after.via_c, true);

    // Model-side parameters: re-simulate, never regenerate.
    d.push("lde_n", &before.lde_n, &after.lde_n, true);
    d.push("lde_p", &before.lde_p, &after.lde_p, true);
    d.push("variation", &before.variation, &after.variation, true);
    d.push("nmos", &before.nmos, &after.nmos, true);
    d.push("pmos", &before.pmos, &after.pmos, true);
    d.push("electrical", &before.electrical, &after.electrical, true);

    // Design rules: any section change can outlaw existing geometry.
    let (rb, ra) = (&before.rules, &after.rules);
    d.push("rules.grid_nm", &rb.grid_nm, &ra.grid_nm, false);
    d.push("rules.feol", &rb.feol, &ra.feol, false);
    d.push("rules.metal", &rb.metal, &ra.metal, false);
    d.push("rules.vias", &rb.vias, &ra.vias, false);
    d.push("rules.grids", &rb.grids, &ra.grids, false);

    // Stream-out interop: a layer-map change redraws nothing — existing
    // layouts stay legal — but emitted GDS streams differ, and the
    // fingerprint (which feeds the map) invalidates caches.
    d.push("gds", &before.gds, &after.gds, true);

    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_decks_show_no_drift() {
        let d = diff_techs(&Technology::finfet7(), &Technology::finfet7());
        assert!(d.is_identical(), "{:#?}", d.entries);
        assert!(!d.cache_invalidating());
        assert!(d.layout_compatible());
    }

    #[test]
    fn electrical_recalibration_is_layout_compatible_but_cache_invalidating() {
        let before = Technology::sky130ish();
        let mut after = before.clone();
        after.via_r[1] *= 1.2;
        after.lde_n.kvth_lod *= 0.9;
        after.nmos.vth0 += 0.01;
        let d = diff_techs(&before, &after);
        assert!(!d.is_identical());
        assert!(d.cache_invalidating(), "fingerprint feeds every field");
        assert!(d.layout_compatible(), "{:#?}", d.entries);
        assert_eq!(d.entries.len(), 3);
    }

    #[test]
    fn pitch_change_breaks_layout_compatibility() {
        let before = Technology::finfet7();
        let mut after = before.clone();
        after.metals[2].pitch += 4;
        let d = diff_techs(&before, &after);
        assert!(!d.layout_compatible());
        assert!(d.cache_invalidating());
        assert!(d
            .entries
            .iter()
            .any(|e| e.field == "metals[2].pitch" && !e.layout_compatible));
    }

    #[test]
    fn stack_depth_change_is_structural() {
        let before = Technology::finfet7();
        let mut after = before.clone();
        after.metals.pop();
        after.via_r.pop();
        let d = diff_techs(&before, &after);
        assert!(!d.layout_compatible());
        assert!(d.entries.iter().any(|e| e.field == "metals.len"));
        assert!(d.entries.iter().any(|e| e.field == "via_r.len"));
    }

    #[test]
    fn rule_deck_edit_is_structural() {
        let before = Technology::bulk16();
        let mut after = before.clone();
        after.rules.metal[0].min_space += 2;
        let d = diff_techs(&before, &after);
        assert!(!d.layout_compatible());
        assert!(d.entries.iter().any(|e| e.field == "rules.metal"));
    }

    #[test]
    fn drift_is_serializable() {
        // Compile-time check that the tree implements Serialize/Deserialize
        // (the workspace keeps serde formats out of its dependency set).
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<TechDrift>();
        assert_serde::<DriftEntry>();
    }
}
