//! Library feasibility proofs (`LIB.*`).
//!
//! The selector only ever picks cell configurations from
//! [`prima_core::selection::std_config_space`], which is a subset of
//! `STD_NFIN_CHOICES × ℕ(nf) × [1, STD_M_MAX] × PlacementPattern::ALL`.
//! The cell generator tiles a fixed unit at `poly_pitch` horizontally and
//! `nfin·fin_pitch + cell_height_overhead` vertically, so the geometry it
//! emits is **periodic in `nf` and `m`**: adding a finger column or a unit
//! row repeats shapes at a pitch that already exists in a 2-finger,
//! 2-row cell. A width/space/area/grid rule that holds for the smallest
//! tile therefore holds for every larger one, which lets a handful of
//! inequalities plus a rendered corner-config DRC pass stand in for
//! enumerating the (unbounded in `nf`) configuration space — with zero
//! simulations.
//!
//! Checks:
//!
//! * **`LIB.PINS`** — the deck has the layers and placement grids the
//!   generator dereferences (bottom stub layer + trunk layer, poly grid,
//!   bottom-metal grid).
//! * **`LIB.FIT`** — the analytic inequalities: stub pitch/spacing, stub
//!   width/area at every `nfin` choice, poly area, inter-row poly and
//!   diffusion clearances, trunk-track fit.
//! * **`LIB.PORTS`** — every declared port and tuning-terminal net exists
//!   in the primitive's device template.
//! * **`LIB.DRC`** — corner configurations of every primitive render and
//!   pass the deck's own DRC (smallest tile, a multi-row tile, and a
//!   no-dummy tile, per placement pattern).

use prima_core::diagnostics::{RuleKind, Severity, Violation};
use prima_core::selection::{STD_M_MAX, STD_NFIN_CHOICES};
use prima_layout::{render, CellConfig, PlacementPattern};
use prima_pdk::{Nm, Technology};
use prima_primitives::{Library, PrimitiveDef};
use prima_verify::drc::check_cell;

use crate::lint;

/// Corner configurations per placement pattern: the smallest tile (every
/// pitch the tiling ever uses appears here), a multi-row tile (exercises
/// the inter-row clearances), and a no-dummy tile (exercises row-edge
/// shapes). `(nfin, nf, m, dummies)`.
const CORNER_CONFIGS: [(u32, u32, u32, bool); 3] =
    [(2, 2, 1, true), (2, 3, 2, true), (3, 4, 2, false)];

/// Runs every library lint and returns the findings.
pub(crate) fn lint_library(tech: &Technology, lib: &Library) -> Vec<Violation> {
    let mut out = Vec::new();

    let deck_usable = lint_pins(tech, &mut out);
    if deck_usable {
        lint_fit(tech, &mut out);
    }
    // Geometry checks are only meaningful on a deck the generator can
    // address at all; on a broken deck the LIB.PINS findings carry the gate.
    let geometry_ok = deck_usable && out.is_empty();

    for def in lib.iter() {
        lint_ports(def, &mut out);
        if geometry_ok && !def.spec.devices.is_empty() {
            lint_rendered_corners(tech, def, &mut out);
        }
    }
    out
}

/// Structural prerequisites of the cell generator; returns `false` when
/// rendering would dereference a missing layer.
fn lint_pins(tech: &Technology, out: &mut Vec<Violation>) -> bool {
    let mut ok = true;
    if tech.metals.len() < 2 {
        out.push(lint(
            crate::RULE_LIB_PINS,
            RuleKind::Missing,
            Severity::Error,
            None,
            format!(
                "cell generator needs a stub layer and a trunk layer; deck has {} metal(s)",
                tech.metals.len()
            ),
        ));
        ok = false;
    }
    if tech.rules.metal.len() < tech.metals.len().min(2) {
        out.push(lint(
            crate::RULE_LIB_PINS,
            RuleKind::Missing,
            Severity::Error,
            None,
            format!(
                "rule deck covers {} metal layer(s) of the {} the generator uses",
                tech.rules.metal.len(),
                tech.metals.len().min(2)
            ),
        ));
        ok = false;
    }
    if tech.rules.grid("poly").is_none() {
        out.push(lint(
            crate::RULE_LIB_PINS,
            RuleKind::Missing,
            Severity::Error,
            None,
            "no poly placement grid; gate columns cannot be legalized".into(),
        ));
        ok = false;
    }
    if let Some(bottom) = tech.metals.first() {
        if tech.rules.grid(&bottom.name).is_none() {
            out.push(lint(
                crate::RULE_LIB_PINS,
                RuleKind::Missing,
                Severity::Error,
                Some(bottom.name.clone()),
                format!(
                    "no placement grid for bottom routing layer {:?}; \
                     contact stubs cannot be legalized",
                    bottom.name
                ),
            ));
            ok = false;
        }
    }
    if tech.rules.feol("poly").is_none() || tech.rules.feol("diff").is_none() {
        out.push(lint(
            crate::RULE_LIB_PINS,
            RuleKind::Missing,
            Severity::Error,
            None,
            "FEOL rules for poly/diff missing; rendered cells cannot be checked".into(),
        ));
        ok = false;
    }
    ok
}

/// The analytic feasibility inequalities. Each is a statement about the
/// periodic tile, quantified over exactly the values the selector can pick;
/// together with the corner-config DRC they cover every
/// `std_config_space` point for any sizing.
fn lint_fit(tech: &Technology, out: &mut Vec<Violation>) {
    let fin = &tech.fin;
    let stub = &tech.metals[0];
    let stub_rule = &tech.rules.metal[0];
    let trunk = &tech.metals[1];
    let mut fit = |kind: RuleKind, scope: String, message: String| {
        out.push(lint(
            crate::RULE_LIB_FIT,
            kind,
            Severity::Error,
            Some(scope),
            message,
        ));
    };

    // Contact stubs repeat once per gate column, i.e. at poly_pitch.
    if stub.min_width + stub_rule.min_space > fin.poly_pitch {
        fit(
            RuleKind::Spacing,
            format!("{}/stub", stub.name),
            format!(
                "stub width {} + space {} exceeds poly_pitch {}; adjacent \
                 contact stubs can never be legal",
                stub.min_width, stub_rule.min_space, fin.poly_pitch
            ),
        );
    }

    // Per-nfin stub geometry: the stub is min_width × (nfin·fin_pitch/2).
    // Binding at the smallest nfin; reported per choice so the failing
    // configuration point is named exactly.
    for &nfin in STD_NFIN_CHOICES {
        let stub_h: Nm = Nm::from(nfin) * fin.fin_pitch / 2;
        if stub_h < stub_rule.min_width {
            fit(
                RuleKind::Width,
                format!("nfin={nfin}"),
                format!(
                    "stub short side {stub_h} nm below {} min_width {} at nfin={nfin}",
                    stub.name, stub_rule.min_width
                ),
            );
        }
        if stub.min_width * stub_h < stub_rule.min_area_nm2 {
            fit(
                RuleKind::Area,
                format!("nfin={nfin}"),
                format!(
                    "stub area {} nm² below {} min_area {} at nfin={nfin}",
                    stub.min_width * stub_h,
                    stub.name,
                    stub_rule.min_area_nm2
                ),
            );
        }
        if let Some(poly) = tech.rules.feol("poly") {
            let poly_h = Nm::from(nfin) * fin.fin_pitch + 2 * fin.diff_extension;
            if fin.gate_length * poly_h < poly.min_area_nm2 {
                fit(
                    RuleKind::Area,
                    format!("nfin={nfin}"),
                    format!(
                        "gate area {} nm² below poly min_area {} at nfin={nfin}",
                        fin.gate_length * poly_h,
                        poly.min_area_nm2
                    ),
                );
            }
        }
    }

    // Multi-row cells (m >= 2 is always in the selector's range): poly of
    // one row ends diff_extension above the diffusion, the next row's
    // begins diff_extension below its own, so the drawn gap is the row
    // overhead minus two extensions.
    if STD_M_MAX >= 2 {
        let row_gap = fin.cell_height_overhead - 2 * fin.diff_extension;
        if let Some(poly) = tech.rules.feol("poly") {
            if row_gap < poly.min_space {
                fit(
                    RuleKind::Spacing,
                    "rows".into(),
                    format!(
                        "inter-row poly gap {row_gap} nm (overhead {} − 2×diff_extension {}) \
                         below poly min_space {}; every m>=2 configuration is illegal",
                        fin.cell_height_overhead, fin.diff_extension, poly.min_space
                    ),
                );
            }
        }
        if let Some(diff) = tech.rules.feol("diff") {
            if fin.cell_height_overhead < diff.min_space {
                fit(
                    RuleKind::Spacing,
                    "rows".into(),
                    format!(
                        "inter-row diffusion gap {} nm below diff min_space {}",
                        fin.cell_height_overhead, diff.min_space
                    ),
                );
            }
        }
    }

    // Mesh routing draws trunk straps in the row overhead above the fins;
    // at least the first trunk track must fit or no net can leave a row.
    if trunk.min_width > fin.cell_height_overhead / 2 {
        fit(
            RuleKind::Width,
            format!("{}/trunk", trunk.name),
            format!(
                "trunk layer {} min_width {} exceeds half the row overhead {}; \
                 no trunk strap fits",
                trunk.name,
                trunk.min_width,
                fin.cell_height_overhead / 2
            ),
        );
    }
}

/// Ports and tuning terminals must name nets the device template defines.
/// Passive templates (no devices) only need a non-empty port list — their
/// terminals are physical plates, not device nets.
fn lint_ports(def: &PrimitiveDef, out: &mut Vec<Violation>) {
    if def.ports.is_empty() {
        out.push(lint(
            crate::RULE_LIB_PORTS,
            RuleKind::Dangling,
            Severity::Error,
            Some(def.name.clone()),
            format!("primitive {:?} declares no ports", def.name),
        ));
    }
    if def.spec.devices.is_empty() {
        return;
    }
    let nets = def.spec.nets();
    for port in &def.ports {
        if !nets.contains(port) {
            out.push(lint(
                crate::RULE_LIB_PORTS,
                RuleKind::Dangling,
                Severity::Error,
                Some(def.name.clone()),
                format!(
                    "port {:?} of primitive {:?} is not a net of its device template",
                    port, def.name
                ),
            ));
        }
    }
    for terminal in &def.tuning {
        for net in &terminal.nets {
            if !nets.contains(net) {
                out.push(lint(
                    crate::RULE_LIB_PORTS,
                    RuleKind::Dangling,
                    Severity::Error,
                    Some(format!("{}/{}", def.name, terminal.name)),
                    format!(
                        "tuning terminal {:?} of {:?} names unknown net {:?}",
                        terminal.name, def.name, net
                    ),
                ));
            }
        }
    }
}

/// Renders the corner configurations of one primitive and runs the deck's
/// own DRC on each. One `LIB.DRC` finding is emitted per distinct inner
/// rule id so the report stays readable when a deck breaks everything.
fn lint_rendered_corners(tech: &Technology, def: &PrimitiveDef, out: &mut Vec<Violation>) {
    for pattern in PlacementPattern::ALL {
        for (nfin, nf, m, dummies) in CORNER_CONFIGS {
            let cfg = CellConfig {
                nfin,
                nf,
                m,
                pattern,
                dummies,
                mesh: true,
            };
            let scope = format!("{}@nfin={nfin},nf={nf},m={m},{pattern}", def.name);
            match render(tech, &def.spec, &cfg) {
                Ok(geometry) => {
                    let inner = check_cell(&tech.rules, &geometry, &def.name);
                    let mut seen: Vec<&str> = Vec::new();
                    for v in &inner {
                        if v.severity != Severity::Error || seen.contains(&v.rule_id.as_str()) {
                            continue;
                        }
                        seen.push(&v.rule_id);
                        out.push(lint(
                            crate::RULE_LIB_DRC,
                            v.kind,
                            Severity::Error,
                            Some(scope.clone()),
                            format!(
                                "corner config fails deck DRC: {} — {}",
                                v.rule_id, v.message
                            ),
                        ));
                    }
                }
                Err(e) => {
                    out.push(lint(
                        crate::RULE_LIB_DRC,
                        RuleKind::Lint,
                        Severity::Error,
                        Some(scope),
                        format!("corner config failed to render: {e}"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_library;

    #[test]
    fn standard_library_is_feasible_on_all_bundled_decks() {
        let lib = Library::standard();
        for tech in [
            Technology::finfet7(),
            Technology::bulk16(),
            Technology::sky130ish(),
        ] {
            let report = check_library(&tech, &lib);
            assert!(
                report.is_passing(),
                "{}: {:#?}",
                tech.name,
                report.violations
            );
        }
    }

    #[test]
    fn single_layer_deck_fails_pins() {
        let mut tech = Technology::finfet7();
        tech.metals.truncate(1);
        let report = check_library(&tech, &Library::standard());
        assert!(report.has_rule(crate::RULE_LIB_PINS));
        // Geometry checks must not run (they would dereference layer 2).
        assert!(!report.has_rule(crate::RULE_LIB_DRC));
    }

    #[test]
    fn fat_stub_layer_fails_fit_with_the_offending_nfin() {
        let mut tech = Technology::sky130ish();
        // A bottom layer wider than a gate pitch can never place two
        // adjacent contact stubs.
        tech.metals[0].min_width = tech.fin.poly_pitch;
        let report = check_library(&tech, &Library::standard());
        assert!(
            report.has_rule(crate::RULE_LIB_FIT),
            "{:#?}",
            report.violations
        );
    }

    #[test]
    fn starved_row_overhead_fails_fit_for_multirow_cells() {
        let mut tech = Technology::finfet7();
        tech.fin.cell_height_overhead = 2 * tech.fin.diff_extension; // zero poly gap
        let report = check_library(&tech, &Library::standard());
        assert!(report.has_rule(crate::RULE_LIB_FIT));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.rule_id == crate::RULE_LIB_FIT && v.message.contains("m>=2")),
            "{:#?}",
            report.violations
        );
    }

    #[test]
    fn unknown_port_net_is_reported() {
        let mut lib = Library::standard();
        let mut def = lib.get("dp").cloned().expect("dp in standard library");
        def.ports.push("phantom".into());
        lib.upsert(def);
        let report = check_library(&Technology::finfet7(), &lib);
        assert!(report.has_rule(crate::RULE_LIB_PORTS));
    }

    #[test]
    fn corner_configs_cover_every_pattern() {
        // The spot-proof must exercise all three placement patterns; the
        // scope string encodes which one produced a finding.
        let mut tech = Technology::finfet7();
        // Break M1 spacing so every rendered corner fails.
        tech.rules.metal[0].min_space = tech.fin.poly_pitch;
        let report = check_library(&tech, &Library::standard());
        // The seeded defect trips the analytic stub-spacing proof before
        // any rendering happens — exactly the point of the static pass.
        assert!(report.has_rule(crate::RULE_LIB_FIT));
    }
}
