//! # prima-techlint
//!
//! Static PDK-deck and library-feasibility analysis — the zeroth gate.
//!
//! A new `Technology` arrives as plain data, and every downstream stage
//! (cell generation, placement, routing, DRC, ERC, the simulators) trusts
//! that data to be self-consistent: rules derived from the same numbers the
//! generators consume, via stacks as deep as the metal stack, EM tables as
//! long as the via list. A deck that violates those invariants does not
//! fail loudly at registration — it panics three stages later inside a
//! router, or worse, silently produces layouts that can never pass sign-off.
//!
//! This crate front-loads all of that into a pure static pass, run before
//! schematic preflight and long before any SPICE evaluation:
//!
//! * **deck self-consistency** ([`check_tech`]) — stack monotonicity,
//!   width/space/pitch coherence, via-stack completeness and
//!   enclosure-fits-in-width, manufacturing-grid divisibility, EM/IR limit
//!   sanity, LDE/variation parameter ranges. Rule ids are stable
//!   `TECH.*` strings.
//! * **library feasibility** ([`check_library`]) — for every
//!   [`prima_primitives::PrimitiveDef`], a static proof that each
//!   `(nfin, nf, m, pattern)` point the selector can ever pick from
//!   `std_config_space` renders to DRC-clean geometry on the deck. The
//!   proof is analytic where the tiling is periodic (the inequalities are
//!   independent of `nf`/`m`, see [`library`]) plus a rendered corner-config
//!   DRC spot-check. No simulation is invoked. Rule ids are `LIB.*`.
//! * **cross-deck drift** ([`diff_techs`]) — a field-level diff of two
//!   decks classifying every change as layout-compatible (electrical-only:
//!   re-simulate, reuse geometry) or layout-breaking (regenerate), plus
//!   whether the content fingerprint — and therefore every cache
//!   namespace keyed on it — changed.
//!
//! The flow runs [`check_deck`] as a preflight gate; `prima-serve` runs it
//! at tenant-technology registration so a bad deck is rejected at the API
//! boundary, not inside a deadline-scheduled batch.
//!
//! ## Example
//!
//! ```
//! use prima_pdk::Technology;
//! use prima_primitives::Library;
//!
//! // Both bundled nodes and the SKY130-flavored fixture lint clean.
//! for tech in [Technology::finfet7(), Technology::bulk16(), Technology::sky130ish()] {
//!     let report = prima_techlint::check_deck(&tech, &Library::standard());
//!     assert!(report.is_passing(), "{tech_name}: {report:?}", tech_name = tech.name);
//! }
//!
//! // A truncated EM table is caught with a stable rule id.
//! let mut broken = Technology::finfet7();
//! broken.electrical.em_ma_per_cut.pop();
//! let report = prima_techlint::check_tech(&broken);
//! assert!(report.has_rule(prima_techlint::RULE_EM_VIA));
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

use prima_core::diagnostics::{RuleKind, Severity, VerifyReport, Violation};
use prima_pdk::Technology;
use prima_primitives::Library;

pub mod deck;
pub mod drift;
pub mod library;

pub use drift::{diff_techs, DriftEntry, TechDrift};

// ---------------------------------------------------------------------------
// Stable rule identifiers. Tests and callers match on these exact strings;
// never rename one without migrating every fixture.

/// Deck has no metal layers at all.
pub const RULE_STACK_EMPTY: &str = "TECH.STACK.EMPTY";
/// Adjacent metal layers share a preferred routing direction (warning).
pub const RULE_STACK_DIR: &str = "TECH.STACK.DIR";
/// No horizontal/vertical routing-layer pair above M2 for the global router.
pub const RULE_ROUTE_PAIR: &str = "TECH.ROUTE.PAIR";
/// Duplicate drawn-layer name across the metal stack and FEOL rules.
pub const RULE_NAME_DUP: &str = "TECH.NAME.DUP";
/// Wire resistance increases going up the stack.
pub const RULE_MONO_R: &str = "TECH.MONO.R";
/// Wire capacitance decreases going up the stack (warning).
pub const RULE_MONO_C: &str = "TECH.MONO.C";
/// Via resistance increases going up the stack.
pub const RULE_MONO_VIA: &str = "TECH.MONO.VIA";
/// Non-positive or non-finite wire resistance/capacitance.
pub const RULE_METAL_RC: &str = "TECH.METAL.RC";
/// Metal min-width outside `(0, pitch]`.
pub const RULE_METAL_WIDTH: &str = "TECH.METAL.WIDTH";
/// Metal min-space non-positive, or width + space exceeds the track pitch.
pub const RULE_METAL_SPACE: &str = "TECH.METAL.SPACE";
/// Metal min-area non-positive or implausibly large for the min width.
pub const RULE_METAL_AREA: &str = "TECH.METAL.AREA";
/// Rule-deck section lengths disagree with the metal stack.
pub const RULE_RULES_COUNT: &str = "TECH.RULES.COUNT";
/// Rule-deck metal row named differently from its stack layer.
pub const RULE_RULES_NAME: &str = "TECH.RULES.NAME";
/// Via-resistance list shorter or longer than the stack's via levels.
pub const RULE_VIA_COUNT: &str = "TECH.VIA.COUNT";
/// Via cut plus enclosure does not fit in a min-width wire on both layers.
pub const RULE_VIA_FIT: &str = "TECH.VIA.FIT";
/// Non-positive or non-finite via resistance/capacitance.
pub const RULE_VIA_R: &str = "TECH.VIA.R";
/// A dimensional rule is not a multiple of the manufacturing grid.
pub const RULE_GRID_DIV: &str = "TECH.GRID.DIV";
/// Wire electromigration limit non-positive or non-finite.
pub const RULE_EM_WIRE: &str = "TECH.EM.WIRE";
/// Via EM table length disagrees with the via stack, or an entry is bad.
pub const RULE_EM_VIA: &str = "TECH.EM.VIA";
/// IR-drop budget fraction outside `(0, 0.5]`.
pub const RULE_IR_BUDGET: &str = "TECH.IR.BUDGET";
/// Supply voltage non-finite or outside the plausible `[0.2, 5.5]` V band.
pub const RULE_SUPPLY: &str = "TECH.SUPPLY";
/// Well-tap distance or symmetry tolerance out of range.
pub const RULE_TAP_RANGE: &str = "TECH.TAP.RANGE";
/// Fin/poly grid geometry inconsistent (zero pitches, gate > poly pitch …).
pub const RULE_FIN_GEOM: &str = "TECH.FIN.GEOM";
/// LDE coefficient non-finite or outside its physical range.
pub const RULE_LDE_RANGE: &str = "TECH.LDE.RANGE";
/// Variation (mismatch) parameter non-positive or outside its range.
pub const RULE_VAR_RANGE: &str = "TECH.VAR.RANGE";
/// A non-empty corner table lacks an identity `tt` corner (or its `tt` is
/// not the identity).
pub const RULE_CORNER_TT: &str = "TECH.CORNER.TT";
/// Two corners in the table share a name.
pub const RULE_CORNER_DUP: &str = "TECH.CORNER.DUP";
/// A corner perturbs outside the deck's declared bounds (or a bound /
/// perturbation is non-finite).
pub const RULE_CORNER_RANGE: &str = "TECH.CORNER.RANGE";
/// GDS layer-map unit sizes non-positive or non-finite.
pub const RULE_GDS_UNITS: &str = "TECH.GDS.UNITS";
/// A drawn/routable stack layer lacks a GDS layer-map entry; stream-out
/// of any design touching it would fail.
pub const RULE_GDS_COVERAGE: &str = "TECH.GDS.COVERAGE";
/// Two layer-map entries collide — a duplicated stack-layer name or a
/// shared GDS (layer, datatype) pair.
pub const RULE_GDS_DUP: &str = "TECH.GDS.DUP";

/// Deck lacks the routing layers / placement grids the cell generator needs.
pub const RULE_LIB_PINS: &str = "LIB.PINS";
/// Primitive port or tuning terminal references a net its spec never uses.
pub const RULE_LIB_PORTS: &str = "LIB.PORTS";
/// A `std_config_space` point provably renders geometry that breaks a rule.
pub const RULE_LIB_FIT: &str = "LIB.FIT";
/// Rendered corner configuration fails the deck's own DRC.
pub const RULE_LIB_DRC: &str = "LIB.DRC";

/// Builds a techlint violation. Geometry-free by construction: techlint
/// findings name rules and scopes, not rectangles.
pub(crate) fn lint(
    rule_id: &str,
    kind: RuleKind,
    severity: Severity,
    scope: Option<String>,
    message: String,
) -> Violation {
    Violation {
        rule_id: rule_id.to_string(),
        kind,
        severity,
        layer: None,
        scope,
        rects: Vec::new(),
        found: None,
        required: None,
        message,
    }
}

/// Lints one deck for self-consistency (`TECH.*` rules only).
pub fn check_tech(tech: &Technology) -> VerifyReport {
    let mut report = VerifyReport {
        circuit: tech.name.clone(),
        ..VerifyReport::default()
    };
    report.absorb("techlint.deck", deck::lint_deck(tech));
    report.finalize();
    report
}

/// Proves (or refutes) that every primitive in `lib` is manufacturable on
/// `tech` (`LIB.*` rules only). Purely static: renders geometry and runs
/// DRC, never a simulator.
pub fn check_library(tech: &Technology, lib: &Library) -> VerifyReport {
    let mut report = VerifyReport {
        circuit: tech.name.clone(),
        ..VerifyReport::default()
    };
    report.absorb("techlint.library", library::lint_library(tech, lib));
    report.finalize();
    report
}

/// The full preflight: deck self-consistency plus library feasibility in
/// one report. This is what the flow gate and `prima-serve` registration
/// run.
///
/// When the deck family itself has error-severity findings, the library
/// pass is skipped (and left out of `checks_run`): feasibility on a
/// self-inconsistent deck would only restate the deck defect as cascaded
/// `LIB.*` noise, burying the root-cause `TECH.*` id.
pub fn check_deck(tech: &Technology, lib: &Library) -> VerifyReport {
    let mut report = VerifyReport {
        circuit: tech.name.clone(),
        ..VerifyReport::default()
    };
    let deck_findings = deck::lint_deck(tech);
    let deck_broken = deck_findings.iter().any(|v| v.severity == Severity::Error);
    report.absorb("techlint.deck", deck_findings);
    if !deck_broken {
        report.absorb("techlint.library", library::lint_library(tech, lib));
    }
    report.finalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_decks_lint_clean() {
        for tech in [
            Technology::finfet7(),
            Technology::bulk16(),
            Technology::sky130ish(),
        ] {
            let report = check_deck(&tech, &Library::standard());
            assert!(
                report.is_passing(),
                "{}: {:#?}",
                tech.name,
                report.violations
            );
            assert_eq!(report.checks_run, vec!["techlint.deck", "techlint.library"]);
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let tech = Technology::sky130ish();
        let lib = Library::standard();
        assert_eq!(check_deck(&tech, &lib), check_deck(&tech, &lib));
    }
}
