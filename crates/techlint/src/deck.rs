//! Deck self-consistency lints (`TECH.*`).
//!
//! Every check here inspects only the [`Technology`] value — no geometry is
//! generated, no simulator touched. The checks encode the invariants the
//! rest of the workspace silently assumes: the router wants an H/V layer
//! pair above M2, the EM pass indexes `em_ma_per_cut` by via level, DRC
//! zips `rules.metal` against `metals`, and the evaluators treat resistance
//! as non-increasing up the stack when trading off wire layers.

use prima_core::diagnostics::{RuleKind, Severity, Violation};
use prima_pdk::{GdsLayerMap, LdeParams, RouteDir, Technology};

use crate::lint;

/// Runs every deck lint and returns the findings (unsorted; the caller's
/// report finalizes them into canonical order).
pub(crate) fn lint_deck(tech: &Technology) -> Vec<Violation> {
    let mut out = Vec::new();

    lint_supply_and_limits(tech, &mut out);
    lint_fin_geometry(tech, &mut out);
    lint_lde(&tech.lde_n, "lde_n", &mut out);
    lint_lde(&tech.lde_p, "lde_p", &mut out);
    lint_variation(tech, &mut out);
    lint_corners(tech, &mut out);

    if tech.metals.is_empty() {
        out.push(lint(
            crate::RULE_STACK_EMPTY,
            RuleKind::Missing,
            Severity::Error,
            None,
            "technology has no metal layers; nothing can be routed".into(),
        ));
        // Every remaining check dereferences the stack — stop here.
        return out;
    }

    lint_stack(tech, &mut out);
    lint_monotonicity(tech, &mut out);
    lint_rule_sections(tech, &mut out);
    lint_vias(tech, &mut out);
    lint_em_tables(tech, &mut out);
    lint_grid_divisibility(tech, &mut out);
    lint_gds_map(tech, &mut out);

    out
}

fn finite_pos(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// Supply voltage, IR budget, tap distance, symmetry tolerance.
fn lint_supply_and_limits(tech: &Technology, out: &mut Vec<Violation>) {
    if !tech.vdd.is_finite() || !(0.2..=5.5).contains(&tech.vdd) {
        out.push(lint(
            crate::RULE_SUPPLY,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!(
                "vdd = {} V is outside the plausible 0.2–5.5 V supply band",
                tech.vdd
            ),
        ));
    }
    let ir = tech.electrical.ir_frac_vdd;
    if !ir.is_finite() || ir <= 0.0 || ir > 0.5 {
        out.push(lint(
            crate::RULE_IR_BUDGET,
            RuleKind::Ir,
            Severity::Error,
            None,
            format!("ir_frac_vdd = {ir} must lie in (0, 0.5]"),
        ));
    }
    if !finite_pos(tech.electrical.em_ma_per_um) {
        out.push(lint(
            crate::RULE_EM_WIRE,
            RuleKind::Em,
            Severity::Error,
            None,
            format!(
                "em_ma_per_um = {} must be positive and finite",
                tech.electrical.em_ma_per_um
            ),
        ));
    }
    if tech.electrical.max_tap_distance_nm < 1 {
        out.push(lint(
            crate::RULE_TAP_RANGE,
            RuleKind::Tap,
            Severity::Error,
            None,
            format!(
                "max_tap_distance_nm = {} leaves no legal cell position",
                tech.electrical.max_tap_distance_nm
            ),
        ));
    }
    if tech.electrical.sym_tolerance_nm < 0 {
        out.push(lint(
            crate::RULE_TAP_RANGE,
            RuleKind::Symmetry,
            Severity::Error,
            None,
            format!(
                "sym_tolerance_nm = {} is negative",
                tech.electrical.sym_tolerance_nm
            ),
        ));
    }
}

/// Fin/poly grid: positive pitches and the drawn feature fitting its pitch.
fn lint_fin_geometry(tech: &Technology, out: &mut Vec<Violation>) {
    let fin = &tech.fin;
    let mut bad = |msg: String| {
        out.push(lint(
            crate::RULE_FIN_GEOM,
            RuleKind::Lint,
            Severity::Error,
            None,
            msg,
        ));
    };
    if fin.fin_pitch < 1 || fin.fin_width < 1 || fin.weff_per_fin < 1 {
        bad(format!(
            "fin_pitch/fin_width/weff_per_fin must all be >= 1 (got {}/{}/{})",
            fin.fin_pitch, fin.fin_width, fin.weff_per_fin
        ));
    } else if fin.fin_width > fin.fin_pitch {
        bad(format!(
            "fin_width {} exceeds fin_pitch {}; fins would merge",
            fin.fin_width, fin.fin_pitch
        ));
    }
    if fin.poly_pitch < 1 || fin.gate_length < 1 {
        bad(format!(
            "poly_pitch/gate_length must be >= 1 (got {}/{})",
            fin.poly_pitch, fin.gate_length
        ));
    } else if fin.gate_length > fin.poly_pitch {
        bad(format!(
            "gate_length {} exceeds poly_pitch {}; gates would merge",
            fin.gate_length, fin.poly_pitch
        ));
    }
    if fin.diff_extension < 1 {
        bad(format!(
            "diff_extension {} leaves no room for source/drain contacts",
            fin.diff_extension
        ));
    }
    if fin.cell_height_overhead < 0 || fin.cell_width_overhead < 0 {
        bad(format!(
            "cell overheads must be non-negative (got {}/{})",
            fin.cell_height_overhead, fin.cell_width_overhead
        ));
    }
}

fn lint_lde(lde: &LdeParams, which: &str, out: &mut Vec<Violation>) {
    let fields = [
        ("kvth_lod", lde.kvth_lod, 1.0),
        ("kmu_lod", lde.kmu_lod, 10.0),
        ("kvth_wpe", lde.kvth_wpe, 100.0),
    ];
    for (name, value, bound) in fields {
        if !value.is_finite() || value.abs() > bound {
            out.push(lint(
                crate::RULE_LDE_RANGE,
                RuleKind::Lint,
                Severity::Error,
                Some(which.to_string()),
                format!("{which}.{name} = {value} outside |x| <= {bound}"),
            ));
        }
    }
    if !finite_pos(lde.sc_offset) {
        out.push(lint(
            crate::RULE_LDE_RANGE,
            RuleKind::Lint,
            Severity::Error,
            Some(which.to_string()),
            format!(
                "{which}.sc_offset = {} must be positive (keeps WPE finite at the well edge)",
                lde.sc_offset
            ),
        ));
    }
    if !lde.inv_sa_ref.is_finite() || lde.inv_sa_ref < 0.0 {
        out.push(lint(
            crate::RULE_LDE_RANGE,
            RuleKind::Lint,
            Severity::Error,
            Some(which.to_string()),
            format!("{which}.inv_sa_ref = {} must be >= 0", lde.inv_sa_ref),
        ));
    }
}

fn lint_variation(tech: &Technology, out: &mut Vec<Violation>) {
    let var = &tech.variation;
    // Pelgrom coefficients live in the nV·√m to µV·√m decades; anything
    // past 1e-6 V·√m would predict volt-scale mismatch on real devices.
    if !finite_pos(var.avth) || var.avth > 1e-6 {
        out.push(lint(
            crate::RULE_VAR_RANGE,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!("avth = {} V·√m outside (0, 1e-6]", var.avth),
        ));
    }
    if !var.vth_gradient_per_um.is_finite() || var.vth_gradient_per_um.abs() > 0.1 {
        out.push(lint(
            crate::RULE_VAR_RANGE,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!(
                "vth_gradient_per_um = {} V/µm outside |g| <= 0.1",
                var.vth_gradient_per_um
            ),
        ));
    }
}

/// Corner-table sanity: an empty table is fine (the deck simply ships no
/// corners), but a non-empty one must carry an identity `tt`, unique
/// names, and every perturbation inside the declared bounds — a broken
/// table dies here with exact rule ids instead of surfacing as solver
/// non-convergence three stages into a sweep.
fn lint_corners(tech: &Technology, out: &mut Vec<Violation>) {
    let set = &tech.corners;
    if set.corners.is_empty() {
        return;
    }
    match set.get("tt") {
        None => out.push(lint(
            crate::RULE_CORNER_TT,
            RuleKind::Missing,
            Severity::Error,
            None,
            format!(
                "corner table {:?} has no \"tt\" corner; the nominal point \
                 must be a named member so sweeps can reference it",
                set.names()
            ),
        )),
        Some(tt) if !tt.is_identity() => out.push(lint(
            crate::RULE_CORNER_TT,
            RuleKind::Lint,
            Severity::Error,
            Some("tt".to_string()),
            "\"tt\" corner is not the identity: nominal must mean nominal".to_string(),
        )),
        Some(_) => {}
    }
    let names = set.names();
    for (i, name) in names.iter().enumerate() {
        if names[..i].contains(name) {
            out.push(lint(
                crate::RULE_CORNER_DUP,
                RuleKind::Lint,
                Severity::Error,
                Some(name.clone()),
                format!("corner name {name:?} appears more than once"),
            ));
        }
    }
    let b = &set.bounds;
    let bounds_ok = b.max_vth_shift_v.is_finite()
        && b.max_vth_shift_v >= 0.0
        && finite_pos(b.kp_scale.0)
        && b.kp_scale.1.is_finite()
        && b.kp_scale.0 <= b.kp_scale.1
        && finite_pos(b.vdd_scale.0)
        && b.vdd_scale.1.is_finite()
        && b.vdd_scale.0 <= b.vdd_scale.1
        && b.temp_c.0.is_finite()
        && b.temp_c.1.is_finite()
        && b.temp_c.0 <= b.temp_c.1;
    if !bounds_ok {
        out.push(lint(
            crate::RULE_CORNER_RANGE,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!("corner bounds are malformed: {b:?}"),
        ));
        return;
    }
    for c in &set.corners {
        let mut breach = |what: String| {
            out.push(lint(
                crate::RULE_CORNER_RANGE,
                RuleKind::Lint,
                Severity::Error,
                Some(c.name.clone()),
                format!("corner {:?}: {what}", c.name),
            ));
        };
        for (tag, shift) in [
            ("nmos_vth_shift_v", c.nmos_vth_shift_v),
            ("pmos_vth_shift_v", c.pmos_vth_shift_v),
        ] {
            if !shift.is_finite() || shift.abs() > b.max_vth_shift_v {
                breach(format!(
                    "{tag} = {shift} V outside |shift| <= {}",
                    b.max_vth_shift_v
                ));
            }
        }
        for (tag, scale) in [
            ("nmos_kp_scale", c.nmos_kp_scale),
            ("pmos_kp_scale", c.pmos_kp_scale),
        ] {
            if !scale.is_finite() || scale < b.kp_scale.0 || scale > b.kp_scale.1 {
                breach(format!("{tag} = {scale} outside {:?}", b.kp_scale));
            }
        }
        if !c.vdd_scale.is_finite() || c.vdd_scale < b.vdd_scale.0 || c.vdd_scale > b.vdd_scale.1 {
            breach(format!(
                "vdd_scale = {} outside {:?}",
                c.vdd_scale, b.vdd_scale
            ));
        }
        if let Some(t) = c.temp_c {
            if !t.is_finite() || t < b.temp_c.0 || t > b.temp_c.1 {
                breach(format!("temp_c = {t} °C outside {:?}", b.temp_c));
            }
        }
    }
}

/// Stack shape: names, directions, per-layer width/space/area coherence.
fn lint_stack(tech: &Technology, out: &mut Vec<Violation>) {
    // Duplicate drawn-layer names confuse every by-name lookup (grids,
    // FEOL rules, reports).
    let mut names: Vec<&str> = tech
        .metals
        .iter()
        .map(|m| m.name.as_str())
        .chain(tech.rules.feol.iter().map(|r| r.layer.as_str()))
        .collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        if pair[0] == pair[1] {
            out.push(lint(
                crate::RULE_NAME_DUP,
                RuleKind::Lint,
                Severity::Error,
                Some(pair[0].to_string()),
                format!("layer name {:?} used more than once", pair[0]),
            ));
        }
    }

    for (i, m) in tech.metals.iter().enumerate() {
        let scope = Some(m.name.clone());
        if m.min_width < 1 || m.min_width > m.pitch {
            out.push(lint(
                crate::RULE_METAL_WIDTH,
                RuleKind::Width,
                Severity::Error,
                scope.clone(),
                format!(
                    "{}: min_width {} must lie in [1, pitch {}]",
                    m.name, m.min_width, m.pitch
                ),
            ));
        }
        if !finite_pos(m.r_ohm_per_um) || !m.c_f_per_um.is_finite() || m.c_f_per_um < 0.0 {
            out.push(lint(
                crate::RULE_METAL_RC,
                RuleKind::Lint,
                Severity::Error,
                scope.clone(),
                format!(
                    "{}: r_ohm_per_um {} / c_f_per_um {} must be positive-finite / non-negative",
                    m.name, m.r_ohm_per_um, m.c_f_per_um
                ),
            ));
        }
        if let Some(next) = tech.metals.get(i + 1) {
            if m.dir == next.dir {
                out.push(lint(
                    crate::RULE_STACK_DIR,
                    RuleKind::Lint,
                    Severity::Warning,
                    scope,
                    format!(
                        "{} and {} share direction {:?}; adjacent-layer jogs need a third layer",
                        m.name, next.name, m.dir
                    ),
                ));
            }
        }
    }

    // The global router scans layers 3.. for one horizontal and one
    // vertical trunk layer; a stack without the pair silently keeps its
    // out-of-stack defaults and panics deep inside routing.
    let upper = &tech.metals[2.min(tech.metals.len())..];
    let has_h = upper.iter().any(|m| m.dir == RouteDir::Horizontal);
    let has_v = upper.iter().any(|m| m.dir == RouteDir::Vertical);
    if !(has_h && has_v) {
        out.push(lint(
            crate::RULE_ROUTE_PAIR,
            RuleKind::Missing,
            Severity::Error,
            None,
            format!(
                "no horizontal+vertical routing pair above M2 ({} layer(s) total); \
                 the global router needs one of each",
                tech.metals.len()
            ),
        ));
    }
}

/// Electrical monotonicity up the stack: upper layers are thicker copper
/// (resistance must not increase) and vias get larger (via resistance must
/// not increase). Capacitance ordering is advisory only.
fn lint_monotonicity(tech: &Technology, out: &mut Vec<Violation>) {
    for pair in tech.metals.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if hi.r_ohm_per_um > lo.r_ohm_per_um {
            out.push(lint(
                crate::RULE_MONO_R,
                RuleKind::Lint,
                Severity::Error,
                Some(hi.name.clone()),
                format!(
                    "r_ohm_per_um rises going up the stack: {} = {} above {} = {}",
                    hi.name, hi.r_ohm_per_um, lo.name, lo.r_ohm_per_um
                ),
            ));
        }
        if hi.c_f_per_um < lo.c_f_per_um {
            out.push(lint(
                crate::RULE_MONO_C,
                RuleKind::Lint,
                Severity::Warning,
                Some(hi.name.clone()),
                format!(
                    "c_f_per_um falls going up the stack: {} = {} above {} = {}",
                    hi.name, hi.c_f_per_um, lo.name, lo.c_f_per_um
                ),
            ));
        }
    }
    for (i, pair) in tech.via_r.windows(2).enumerate() {
        if pair[1] > pair[0] {
            out.push(lint(
                crate::RULE_MONO_VIA,
                RuleKind::Lint,
                Severity::Error,
                Some(format!("V{}", i + 2)),
                format!(
                    "via_r rises going up the stack: V{} = {} above V{} = {}",
                    i + 2,
                    pair[1],
                    i + 1,
                    pair[0]
                ),
            ));
        }
    }
}

/// Rule-deck sections must mirror the stack: one metal rule row per layer
/// (same name, coherent width/space/area) and one via rule per level.
fn lint_rule_sections(tech: &Technology, out: &mut Vec<Violation>) {
    let rules = &tech.rules;
    if rules.metal.len() != tech.metals.len() {
        out.push(lint(
            crate::RULE_RULES_COUNT,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!(
                "rules.metal has {} row(s) for a {}-layer stack",
                rules.metal.len(),
                tech.metals.len()
            ),
        ));
    }
    if rules.vias.len() + 1 != tech.metals.len() {
        out.push(lint(
            crate::RULE_RULES_COUNT,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!(
                "rules.vias has {} level(s); a {}-layer stack needs {}",
                rules.vias.len(),
                tech.metals.len(),
                tech.metals.len() - 1
            ),
        ));
    }
    for (m, r) in tech.metals.iter().zip(&rules.metal) {
        if m.name != r.layer {
            out.push(lint(
                crate::RULE_RULES_NAME,
                RuleKind::Lint,
                Severity::Error,
                Some(m.name.clone()),
                format!(
                    "stack layer {:?} has rule row named {:?}; by-name lookups will miss",
                    m.name, r.layer
                ),
            ));
        }
        if r.min_space < 1 || r.min_width + r.min_space > m.pitch {
            out.push(lint(
                crate::RULE_METAL_SPACE,
                RuleKind::Spacing,
                Severity::Error,
                Some(m.name.clone()),
                format!(
                    "{}: min_width {} + min_space {} must fit the track pitch {}",
                    m.name, r.min_width, r.min_space, m.pitch
                ),
            ));
        }
        // Smaller than width² is vacuous (any min-width shape passes);
        // far larger would outlaw the generator's own contact stubs.
        if r.min_area_nm2 < 1 || r.min_area_nm2 > 16 * r.min_width * r.min_width {
            out.push(lint(
                crate::RULE_METAL_AREA,
                RuleKind::Area,
                Severity::Error,
                Some(m.name.clone()),
                format!(
                    "{}: min_area {} nm² outside [1, 16·min_width²={}]",
                    m.name,
                    r.min_area_nm2,
                    16 * r.min_width * r.min_width
                ),
            ));
        }
    }
}

/// Via stack: complete, positive, and every cut + enclosure fitting inside
/// a minimum-width wire on *both* connected layers.
fn lint_vias(tech: &Technology, out: &mut Vec<Violation>) {
    if tech.via_r.len() + 1 != tech.metals.len() {
        out.push(lint(
            crate::RULE_VIA_COUNT,
            RuleKind::Missing,
            Severity::Error,
            None,
            format!(
                "via_r has {} entr(ies); a {}-layer stack has {} via level(s)",
                tech.via_r.len(),
                tech.metals.len(),
                tech.metals.len() - 1
            ),
        ));
    }
    for (i, r) in tech.via_r.iter().enumerate() {
        if !finite_pos(*r) {
            out.push(lint(
                crate::RULE_VIA_R,
                RuleKind::Lint,
                Severity::Error,
                Some(format!("V{}", i + 1)),
                format!("via_r[V{}] = {r} must be positive and finite", i + 1),
            ));
        }
    }
    if !tech.via_c.is_finite() || tech.via_c < 0.0 {
        out.push(lint(
            crate::RULE_VIA_R,
            RuleKind::Lint,
            Severity::Error,
            None,
            format!("via_c = {} must be non-negative and finite", tech.via_c),
        ));
    }
    for (i, via) in tech.rules.vias.iter().enumerate() {
        let scope = Some(via.name.clone());
        if via.cut < 1 || via.enclosure < 0 {
            out.push(lint(
                crate::RULE_VIA_FIT,
                RuleKind::Enclosure,
                Severity::Error,
                scope,
                format!(
                    "{}: cut {} must be >= 1 and enclosure {} >= 0",
                    via.name, via.cut, via.enclosure
                ),
            ));
            continue;
        }
        let (Some(lower), Some(upper)) = (tech.metals.get(i), tech.metals.get(i + 1)) else {
            continue; // level count already reported by TECH.RULES.COUNT
        };
        let need = via.cut + 2 * via.enclosure;
        let have = lower.min_width.min(upper.min_width);
        if need > have {
            out.push(lint(
                crate::RULE_VIA_FIT,
                RuleKind::Enclosure,
                Severity::Error,
                scope,
                format!(
                    "{}: cut {} + 2×enclosure {} = {} does not fit the narrower \
                     connected wire ({} nm)",
                    via.name, via.cut, via.enclosure, need, have
                ),
            ));
        }
    }
}

/// EM table length must agree with the via stack, entries positive.
fn lint_em_tables(tech: &Technology, out: &mut Vec<Violation>) {
    let cuts = &tech.electrical.em_ma_per_cut;
    if cuts.len() != tech.via_r.len() {
        out.push(lint(
            crate::RULE_EM_VIA,
            RuleKind::Em,
            Severity::Error,
            None,
            format!(
                "em_ma_per_cut has {} entr(ies) for {} via level(s); \
                 the ERC pass indexes them one-to-one",
                cuts.len(),
                tech.via_r.len()
            ),
        ));
    }
    for (i, limit) in cuts.iter().enumerate() {
        if !finite_pos(*limit) {
            out.push(lint(
                crate::RULE_EM_VIA,
                RuleKind::Em,
                Severity::Error,
                Some(format!("V{}", i + 1)),
                format!(
                    "em_ma_per_cut[V{}] = {limit} must be positive and finite",
                    i + 1
                ),
            ));
        }
    }
}

/// Every drawn dimension must land on the manufacturing grid.
fn lint_grid_divisibility(tech: &Technology, out: &mut Vec<Violation>) {
    let g = tech.rules.grid_nm;
    if g < 1 {
        out.push(lint(
            crate::RULE_GRID_DIV,
            RuleKind::Grid,
            Severity::Error,
            None,
            format!("grid_nm = {g} must be >= 1"),
        ));
        return;
    }
    let mut check = |what: String, v: i64| {
        if v % g != 0 {
            out.push(lint(
                crate::RULE_GRID_DIV,
                RuleKind::Grid,
                Severity::Error,
                None,
                format!("{what} = {v} nm is not a multiple of the {g} nm grid"),
            ));
        }
    };
    let fin = &tech.fin;
    for (name, v) in [
        ("fin.fin_pitch", fin.fin_pitch),
        ("fin.fin_width", fin.fin_width),
        ("fin.poly_pitch", fin.poly_pitch),
        ("fin.gate_length", fin.gate_length),
        ("fin.diff_extension", fin.diff_extension),
        ("fin.cell_height_overhead", fin.cell_height_overhead),
        ("fin.cell_width_overhead", fin.cell_width_overhead),
    ] {
        check(name.to_string(), v);
    }
    for m in &tech.metals {
        check(format!("{}.pitch", m.name), m.pitch);
        check(format!("{}.min_width", m.name), m.min_width);
    }
    for r in tech.rules.metal.iter().chain(&tech.rules.feol) {
        check(format!("rules.{}.min_width", r.layer), r.min_width);
        check(format!("rules.{}.min_space", r.layer), r.min_space);
    }
    for v in &tech.rules.vias {
        check(format!("rules.{}.cut", v.name), v.cut);
        check(format!("rules.{}.enclosure", v.name), v.enclosure);
    }
    for grid in &tech.rules.grids {
        check(format!("grids.{}.pitch", grid.layer), grid.pitch);
        check(format!("grids.{}.offset", grid.layer), grid.offset);
    }
}

/// GDS-II layer map: positive unit sizes, an entry for every drawn layer,
/// and collision-free assignments. Enforced here — statically, before any
/// simulation — so stream-out never discovers a hole in the map at the end
/// of a multi-minute flow.
fn lint_gds_map(tech: &Technology, out: &mut Vec<Violation>) {
    let map = &tech.gds;
    for (what, v) in [
        ("unit_in_user", map.unit_in_user),
        ("unit_in_m", map.unit_in_m),
    ] {
        if !finite_pos(v) {
            out.push(lint(
                crate::RULE_GDS_UNITS,
                RuleKind::Lint,
                Severity::Error,
                None,
                format!("gds.{what} = {v} must be positive and finite"),
            ));
        }
    }
    for name in GdsLayerMap::required_layers(&tech.metals) {
        if map.get(&name).is_none() {
            out.push(lint(
                crate::RULE_GDS_COVERAGE,
                RuleKind::Missing,
                Severity::Error,
                Some(name.clone()),
                format!("drawn layer {name} has no gds layer-map entry; stream-out would fail"),
            ));
        }
    }
    for (i, a) in map.entries.iter().enumerate() {
        for b in &map.entries[i + 1..] {
            if a.name == b.name {
                out.push(lint(
                    crate::RULE_GDS_DUP,
                    RuleKind::Lint,
                    Severity::Error,
                    Some(a.name.clone()),
                    format!("gds layer map lists {} twice", a.name),
                ));
            } else if (a.layer, a.datatype) == (b.layer, b.datatype) {
                out.push(lint(
                    crate::RULE_GDS_DUP,
                    RuleKind::Lint,
                    Severity::Error,
                    Some(a.name.clone()),
                    format!(
                        "{} and {} share gds ({}, {}); the layers would merge on stream-out",
                        a.name, b.name, a.layer, a.datatype
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_tech;

    #[test]
    fn bundled_decks_have_no_deck_errors() {
        for tech in [
            Technology::finfet7(),
            Technology::bulk16(),
            Technology::sky130ish(),
        ] {
            let report = check_tech(&tech);
            assert!(
                report.is_passing(),
                "{}: {:#?}",
                tech.name,
                report.violations
            );
        }
    }

    #[test]
    fn missing_tt_corner_is_rejected() {
        let mut tech = Technology::finfet7();
        tech.corners.corners.retain(|c| c.name != "tt");
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_TT));
        assert!(!report.is_passing());
    }

    #[test]
    fn non_identity_tt_is_rejected() {
        let mut tech = Technology::finfet7();
        tech.corners.corners[0].vdd_scale = 1.05;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_TT));
    }

    #[test]
    fn duplicate_corner_names_are_rejected() {
        let mut tech = Technology::finfet7();
        let dup = tech.corners.corners[1].clone();
        tech.corners.corners.push(dup);
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_DUP));
    }

    #[test]
    fn out_of_bounds_corner_is_rejected() {
        let mut tech = Technology::finfet7();
        tech.corners.corners[1].nmos_vth_shift_v = 1.0;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_RANGE));

        let mut tech = Technology::sky130ish();
        tech.corners.corners[5].vdd_scale = 0.55;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_RANGE));

        let mut tech = Technology::bulk16();
        tech.corners.corners[8].temp_c = Some(400.0);
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_CORNER_RANGE));
    }

    #[test]
    fn empty_corner_table_is_fine() {
        let mut tech = Technology::finfet7();
        tech.corners = prima_pdk::CornerSet::default();
        let report = check_tech(&tech);
        assert!(report.is_passing(), "{:#?}", report.violations);
    }

    #[test]
    fn missing_layer_map_entry_is_rejected() {
        let mut tech = Technology::finfet7();
        tech.gds.entries.retain(|e| e.name != "poly");
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_GDS_COVERAGE));
        assert!(!report.is_passing());
    }

    #[test]
    fn empty_layer_map_is_rejected() {
        // What an older serialized deck deserializes to via serde(default).
        let mut tech = Technology::sky130ish();
        tech.gds = GdsLayerMap::default();
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_GDS_COVERAGE));
    }

    #[test]
    fn colliding_layer_numbers_are_rejected() {
        let mut tech = Technology::finfet7();
        let (l, d) = (tech.gds.entries[0].layer, tech.gds.entries[0].datatype);
        tech.gds.entries[1].layer = l;
        tech.gds.entries[1].datatype = d;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_GDS_DUP));
    }

    #[test]
    fn bad_gds_units_are_rejected() {
        let mut tech = Technology::bulk16();
        tech.gds.unit_in_m = 0.0;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_GDS_UNITS));
    }

    #[test]
    fn empty_stack_is_terminal() {
        let mut tech = Technology::finfet7();
        tech.metals.clear();
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_STACK_EMPTY));
        assert!(!report.is_passing());
    }

    #[test]
    fn rising_resistance_trips_monotonicity() {
        let mut tech = Technology::finfet7();
        tech.metals[3].r_ohm_per_um = 500.0;
        let report = check_tech(&tech);
        assert!(
            report.has_rule(crate::RULE_MONO_R),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn rising_via_resistance_trips_monotonicity() {
        let mut tech = Technology::sky130ish();
        tech.via_r[2] = 99.0;
        assert!(check_tech(&tech).has_rule(crate::RULE_MONO_VIA));
    }

    #[test]
    fn truncated_em_table_is_reported() {
        let mut tech = Technology::bulk16();
        tech.electrical.em_ma_per_cut.pop();
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_EM_VIA));
        assert!(!report.is_passing());
    }

    #[test]
    fn truncated_via_stack_is_reported() {
        let mut tech = Technology::finfet7();
        tech.via_r.pop();
        assert!(check_tech(&tech).has_rule(crate::RULE_VIA_COUNT));
    }

    #[test]
    fn oversized_via_is_reported() {
        let mut tech = Technology::finfet7();
        tech.rules.vias[0].enclosure = 50;
        assert!(check_tech(&tech).has_rule(crate::RULE_VIA_FIT));
    }

    #[test]
    fn off_grid_rule_is_reported() {
        let mut tech = Technology::finfet7();
        tech.rules.grid_nm = 5;
        // finfet7 pitches (36, 54 …) are not all multiples of 5.
        assert!(check_tech(&tech).has_rule(crate::RULE_GRID_DIV));
    }

    #[test]
    fn width_exceeding_pitch_is_reported() {
        let mut tech = Technology::bulk16();
        tech.metals[1].min_width = tech.metals[1].pitch + 2;
        assert!(check_tech(&tech).has_rule(crate::RULE_METAL_WIDTH));
    }

    #[test]
    fn rule_row_name_drift_is_reported() {
        let mut tech = Technology::sky130ish();
        tech.rules.metal[0].layer = "MET1".into();
        assert!(check_tech(&tech).has_rule(crate::RULE_RULES_NAME));
    }

    #[test]
    fn missing_route_pair_is_reported() {
        let mut tech = Technology::finfet7();
        // Force everything above M2 vertical: no horizontal trunk layer.
        for m in tech.metals.iter_mut().skip(2) {
            m.dir = RouteDir::Vertical;
        }
        assert!(check_tech(&tech).has_rule(crate::RULE_ROUTE_PAIR));
    }

    #[test]
    fn direction_repeat_is_a_warning_only() {
        let mut tech = Technology::finfet7();
        tech.metals[4].dir = RouteDir::Horizontal; // M4 and M5 both horizontal
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_STACK_DIR));
        assert!(report.is_passing(), "{:?}", report.violations);
    }

    #[test]
    fn bad_supply_and_ir_are_reported() {
        let mut tech = Technology::finfet7();
        tech.vdd = 48.0;
        tech.electrical.ir_frac_vdd = 0.0;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_SUPPLY));
        assert!(report.has_rule(crate::RULE_IR_BUDGET));
    }

    #[test]
    fn bad_lde_and_variation_are_reported() {
        let mut tech = Technology::bulk16();
        tech.lde_n.sc_offset = 0.0;
        tech.variation.avth = -1.0;
        let report = check_tech(&tech);
        assert!(report.has_rule(crate::RULE_LDE_RANGE));
        assert!(report.has_rule(crate::RULE_VAR_RANGE));
    }

    #[test]
    fn merged_gates_are_reported() {
        let mut tech = Technology::sky130ish();
        tech.fin.gate_length = tech.fin.poly_pitch + 10;
        assert!(check_tech(&tech).has_rule(crate::RULE_FIN_GEOM));
    }
}
