//! The layout cost model: Eqs. (5) and (6) of the paper.
//!
//! `Cost = Σ αᵢ·Δxᵢ`, with Δxᵢ the percent deviation of metric *i* from its
//! schematic value — or from its spec when the schematic value is zero
//! (e.g. the input offset of an ideal pair). Deviations are expressed in
//! percent so costs land on the scale Table III reports (a few units).

use prima_primitives::{Metric, MetricValues};
use serde::{Deserialize, Serialize};

/// Per-metric deviation record within a cost evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Metric name.
    pub metric: String,
    /// Weight α.
    pub weight: f64,
    /// Percent deviation Δx.
    pub deviation_pct: f64,
}

/// Percent deviation of one metric (Eq. 6), already scaled ×100.
///
/// * `x_sch ≠ 0`: `100·|x_sch − x_layout| / |x_sch|`.
/// * `x_sch = 0`: `100·max(0, (x_layout − spec)/spec)` — zero while within
///   spec, growing once the layout exceeds it. (The paper's Table III shows
///   0% offset for compliant layouts, which pins down this reading of the
///   `max[0, …]` in Eq. 6.)
///
/// # Panics
///
/// Panics in debug builds if `x_sch == 0` and no spec is provided — a
/// library-authoring error.
pub fn deviation_percent(x_sch: f64, x_layout: f64, spec: Option<f64>) -> f64 {
    if x_sch != 0.0 {
        100.0 * (x_sch - x_layout).abs() / x_sch.abs()
    } else {
        let spec = spec.unwrap_or_else(|| {
            debug_assert!(false, "metric with x_sch = 0 needs a spec value");
            1.0
        });
        100.0 * ((x_layout - spec) / spec).max(0.0)
    }
}

/// Evaluates Eq. (5) over a metric list; returns the total cost and the
/// per-metric breakdown.
///
/// Metrics whose schematic magnitude is below `tiny` (1e-30) are treated as
/// zero-valued and routed through the spec branch.
pub fn cost_of(
    metrics: &[Metric],
    sch: &MetricValues,
    layout: &MetricValues,
) -> (f64, Vec<CostBreakdown>) {
    const TINY: f64 = 1e-30;
    let mut total = 0.0;
    let mut breakdown = Vec::with_capacity(metrics.len());
    for m in metrics {
        let xs = sch.get(&m.name).copied().unwrap_or(0.0);
        let xl = layout.get(&m.name).copied().unwrap_or(0.0);
        let xs = if xs.abs() < TINY { 0.0 } else { xs };
        // Simulated "zero" offsets land at the numerical noise floor; treat
        // anything far below the spec as schematic-zero.
        let xs = match (xs, m.spec) {
            (v, Some(spec)) if v.abs() < 0.02 * spec.abs() => 0.0,
            (v, _) => v,
        };
        let dev = deviation_percent(xs, xl, m.spec);
        total += m.weight * dev;
        breakdown.push(CostBreakdown {
            metric: m.name.clone(),
            weight: m.weight,
            deviation_pct: dev,
        });
    }
    (total, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_primitives::MetricKind;
    use std::collections::HashMap;

    #[test]
    fn deviation_relative_to_schematic() {
        assert!((deviation_percent(2.0, 1.9, None) - 5.0).abs() < 1e-9);
        assert_eq!(deviation_percent(2.0, 2.0, None), 0.0);
        // Symmetric in direction.
        assert!(
            (deviation_percent(2.0, 2.2, None) - deviation_percent(2.0, 1.8, None)).abs() < 1e-9
        );
        // Negative schematic values normalize by magnitude.
        assert!((deviation_percent(-2.0, -1.0, None) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn deviation_spec_branch_clamps_at_zero() {
        // Better than spec: no penalty.
        assert_eq!(deviation_percent(0.0, 1e-4, Some(2e-4)), 0.0);
        // At spec: zero.
        assert_eq!(deviation_percent(0.0, 2e-4, Some(2e-4)), 0.0);
        // Twice the spec: 100%.
        assert!((deviation_percent(0.0, 4e-4, Some(2e-4)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cost_weights_and_sums() {
        let metrics = vec![
            Metric::new("Gm", MetricKind::Gm, 0.5),
            Metric::new("Gm/Ctotal", MetricKind::GmOverCtotal, 0.5),
            Metric::with_spec("offset", MetricKind::InputOffset, 1.0, 2e-4),
        ];
        let mut sch = HashMap::new();
        sch.insert("Gm".to_string(), 2.0e-3);
        sch.insert("Gm/Ctotal".to_string(), 1.0e12);
        sch.insert("offset".to_string(), 0.0);
        let mut lay = HashMap::new();
        lay.insert("Gm".to_string(), 1.984e-3); // 0.8%
        lay.insert("Gm/Ctotal".to_string(), 0.948e12); // 5.2%
        lay.insert("offset".to_string(), 1e-4); // within spec
        let (cost, bd) = cost_of(&metrics, &sch, &lay);
        // 0.5·0.8 + 0.5·5.2 + 1·0 = 3.0 — the paper's best Table III row.
        assert!((cost - 3.0).abs() < 1e-9, "cost = {cost}");
        assert_eq!(bd.len(), 3);
        assert_eq!(bd[2].deviation_pct, 0.0);
    }

    #[test]
    fn noise_floor_offset_counts_as_zero_schematic() {
        let metrics = vec![Metric::with_spec(
            "offset",
            MetricKind::InputOffset,
            1.0,
            2e-4,
        )];
        let mut sch = HashMap::new();
        // Bisection noise: ~1e-9 V instead of exactly 0.
        sch.insert("offset".to_string(), 1.2e-9);
        let mut lay = HashMap::new();
        lay.insert("offset".to_string(), 8e-4);
        let (cost, _) = cost_of(&metrics, &sch, &lay);
        // (8e-4 − 2e-4)/2e-4 = 3 → 300%.
        assert!((cost - 300.0).abs() < 1.0, "cost = {cost}");
    }

    #[test]
    fn perfect_layout_costs_nothing() {
        let metrics = vec![
            Metric::new("a", MetricKind::Gm, 1.0),
            Metric::new("b", MetricKind::Cout, 0.1),
        ];
        let mut vals = HashMap::new();
        vals.insert("a".to_string(), 5.0);
        vals.insert("b".to_string(), 7.0);
        let (cost, _) = cost_of(&metrics, &vals, &vals.clone());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn cost_is_scale_invariant() {
        // Multiplying a metric's schematic and layout values by any constant
        // leaves the cost unchanged (relative deviations).
        let metrics = vec![Metric::new("x", MetricKind::Gm, 1.0)];
        for scale in [1e-15, 1.0, 1e12] {
            let mut sch = HashMap::new();
            sch.insert("x".to_string(), 3.0 * scale);
            let mut lay = HashMap::new();
            lay.insert("x".to_string(), 2.7 * scale);
            let (cost, _) = cost_of(&metrics, &sch, &lay);
            assert!((cost - 10.0).abs() < 1e-9, "scale {scale}: cost {cost}");
        }
    }
}
