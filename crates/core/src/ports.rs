//! Primitive port optimization (Algorithm 2): size the external routes at
//! each primitive port as a number of parallel global-route wires.
//!
//! Step 1 generates per-primitive interval constraints `[w_min, w_max]` on
//! each connected net by sweeping the parallel-route count and watching the
//! primitive cost. Step 2 reconciles the constraints of every primitive
//! sharing a net: overlapping intervals take the largest lower bound (for
//! congestion), disjoint intervals take the count minimizing the summed
//! cost over the gap range.

use std::collections::HashMap;

use prima_geom::Nm;
use prima_layout::PrimitiveLayout;
use prima_pdk::Technology;
use prima_primitives::{Bias, ExternalWire, LayoutView, PrimitiveDef};
use serde::{Deserialize, Serialize};

use crate::accounting::Phase;
use crate::cost::cost_of;
use crate::tuning::choose_knee;
use crate::{OptError, Optimizer};

/// Geometry of a global route at a primitive port, as reported by the
/// global router: the paper's "distance, layer and via information".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalRoute {
    /// Metal layer (1-based) the route runs on.
    pub layer: usize,
    /// Route length in nm.
    pub len_nm: Nm,
    /// Via transitions from M1 up to the route layer at each end.
    pub via_ends: u32,
}

/// Converts a global route into the port wiring RC seen by the primitive
/// when built from `k` parallel routes.
///
/// # Panics
///
/// Panics if `k == 0` or the layer is not in the stack.
pub fn route_wire(tech: &Technology, route: &GlobalRoute, k: u32) -> ExternalWire {
    assert!(k >= 1, "need at least one route");
    let layer = tech.metal(route.layer);
    let r_wire = layer.resistance(route.len_nm, k);
    let r_vias = tech.via_stack_r(1, route.layer) * route.via_ends as f64 / k as f64;
    let c_wire = layer.capacitance(route.len_nm, k);
    let c_vias = tech.via_c * (route.via_ends * k) as f64;
    ExternalWire {
        r_ohm: r_wire + r_vias,
        c_f: c_wire + c_vias,
    }
}

/// Interval constraint produced by one primitive for one net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortConstraint {
    /// Net name (primitive port).
    pub net: String,
    /// Lower bound on parallel routes (maximum-curvature point).
    pub w_min: u32,
    /// Upper bound (first cost increase), or `None` when unbounded within
    /// the explored range.
    pub w_max: Option<u32>,
    /// Cost at each explored count (`costs[i]` ↔ `i + 1` routes).
    pub costs: Vec<f64>,
}

impl PortConstraint {
    /// Cost at `w` routes, clamping to the explored range.
    pub fn cost_at(&self, w: u32) -> f64 {
        let i = (w.max(1) as usize - 1).min(self.costs.len() - 1);
        self.costs[i]
    }
}

/// Result of reconciling the constraints on one net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconciledNet {
    /// Net name.
    pub net: String,
    /// Chosen number of parallel routes.
    pub w: u32,
    /// Whether the intervals overlapped (fast path) or required the
    /// cost-sum search over the gap.
    pub overlapped: bool,
}

impl<'t> Optimizer<'t> {
    /// Algorithm 2, step 1: generates the `[w_min, w_max]` constraint for
    /// each routed net of one primitive.
    ///
    /// `routes` maps port nets to their global-route geometry; nets missing
    /// from the map are left unconstrained. The primitive is evaluated with
    /// the route RC attached to one net at a time (the paper optimizes each
    /// port independently in this step).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    // The `expect`s re-raise panics out of the crossbeam sweep workers;
    // a panicked worker has no result to salvage, so propagation is the
    // only sound behavior.
    #[allow(clippy::expect_used)]
    pub fn port_constraints(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        layout: Option<&PrimitiveLayout>,
        total_fins: u64,
        routes: &HashMap<String, GlobalRoute>,
    ) -> Result<Vec<PortConstraint>, OptError> {
        let view = match layout {
            Some(l) => LayoutView::Layout(l),
            None => LayoutView::Schematic { total_fins },
        };
        let sch = self.eval_values(
            def,
            view_sch(total_fins),
            bias,
            &Default::default(),
            Phase::PortConstraints,
        )?;

        let mut out = Vec::new();
        for (net, route) in routes {
            if !def.ports.contains(net) {
                continue;
            }
            // Symmetric net groups (a pair's two drains) are routed
            // symmetrically by the detailed router — the paper maintains
            // input offset through exactly this geometric constraint — so
            // the testbench wires the whole group, not one side.
            let group: Vec<String> = def
                .tuning
                .iter()
                .find(|t| t.nets.contains(net))
                .map(|t| t.nets.clone())
                .unwrap_or_else(|| vec![net.clone()]);
            // Parallel-route sweep points are independent simulations.
            let results: Vec<Result<f64, OptError>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (1..=self.max_port_routes)
                    .map(|k| {
                        let group = &group;
                        let sch = &sch;
                        scope.spawn(move |_| -> Result<f64, OptError> {
                            let mut ext = HashMap::new();
                            for g in group {
                                ext.insert(g.clone(), route_wire(self.tech(), route, k));
                            }
                            let values =
                                self.eval_values(def, view, bias, &ext, Phase::PortConstraints)?;
                            let (cost, _) = cost_of(&def.metrics, sch, &values);
                            Ok(cost)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("port sweep panicked"))
                    .collect()
            })
            .expect("port scope panicked");
            let costs: Vec<f64> = results.into_iter().collect::<Result<_, _>>()?;
            let (w_min, w_max) = interval_from_costs(&costs);
            out.push(PortConstraint {
                net: net.clone(),
                w_min,
                w_max,
                costs,
            });
        }
        out.sort_by(|a, b| a.net.cmp(&b.net));
        Ok(out)
    }
}

fn view_sch(total_fins: u64) -> LayoutView<'static> {
    LayoutView::Schematic { total_fins }
}

/// Derives `[w_min, w_max]` from a cost-vs-routes curve: `w_min` is the
/// maximum-curvature (knee) point of the decreasing portion, `w_max` the
/// first count at which the cost has turned upward (`None` if it never
/// does within the sweep).
pub(crate) fn interval_from_costs(costs: &[f64]) -> (u32, Option<u32>) {
    debug_assert!(!costs.is_empty());
    let imin = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let w_max = if imin + 1 < costs.len() {
        Some(imin as u32 + 2) // first increasing point, 1-based
    } else {
        None
    };
    // Knee of the decreasing portion costs[0..=imin].
    let dec = &costs[..=imin];
    let w_min = (choose_knee(dec) as u32 + 1).min(imin as u32 + 1).max(1);
    (w_min, w_max)
}

/// Algorithm 2 electromigration closure: raises every `[w_min, w_max]`
/// interval on a net so reconciliation can never choose fewer parallel
/// routes than the EM-safe count `floor` (see
/// [`prima_pdk::Technology::em_required_routes`]).
///
/// `w_min` is clamped up to the floor and any finite `w_max` below it is
/// lifted to exactly the floor, so intervals stay non-empty and the
/// reconciled width still lies inside every published interval — both the
/// overlapped fast path (`max` of lower bounds) and the disjoint cost-sum
/// search then operate entirely at or above the floor. A floor of 0 or 1
/// is a no-op: one route is always allowed to carry a within-limit
/// current.
pub fn clamp_to_em_floor(constraints: &mut [PortConstraint], floor: u32) {
    if floor <= 1 {
        return;
    }
    for c in constraints.iter_mut() {
        if c.w_min < floor {
            c.w_min = floor;
        }
        if let Some(m) = c.w_max {
            if m < floor {
                c.w_max = Some(floor);
            }
        }
    }
}

/// Algorithm 2, step 2: reconciles the constraints that several primitives
/// place on one net.
///
/// Overlapping intervals: the smallest count inside the intersection —
/// `max(w_min_i)` — keeps routing congestion low. Disjoint intervals: the
/// count in `[min(w_max_i), max(w_min_i)]` minimizing the summed cost
/// curves.
///
/// # Panics
///
/// Panics if `constraints` is empty or the constraints disagree on the net
/// name (caller bugs).
// Panicking on caller bugs is this function's documented contract; the
// `expect`s below restate invariants the leading asserts establish.
#[allow(clippy::expect_used)]
pub fn reconcile(constraints: &[PortConstraint]) -> ReconciledNet {
    assert!(!constraints.is_empty(), "no constraints to reconcile");
    let net = constraints[0].net.clone();
    assert!(
        constraints.iter().all(|c| c.net == net),
        "constraints for different nets"
    );
    let lo = constraints.iter().map(|c| c.w_min).max().expect("nonempty");
    let hi_opt = constraints.iter().filter_map(|c| c.w_max).min();
    let overlapped = match hi_opt {
        Some(hi) => lo <= hi,
        None => true,
    };
    if overlapped {
        return ReconciledNet {
            net,
            w: lo,
            overlapped: true,
        };
    }
    // Disjoint: search the gap between the tightest upper bound and the
    // largest lower bound for the minimum summed cost.
    let hi = hi_opt.expect("disjoint requires a finite upper bound");
    let (a, b) = (hi.min(lo), hi.max(lo));
    let mut best_w = a;
    let mut best_cost = f64::INFINITY;
    for w in a..=b {
        let total: f64 = constraints.iter().map(|c| c.cost_at(w)).sum();
        if total < best_cost {
            best_cost = total;
            best_w = w;
        }
    }
    ReconciledNet {
        net,
        w: best_w,
        overlapped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_primitives::Library;

    #[test]
    fn route_wire_scales_with_parallel_count() {
        let tech = Technology::finfet7();
        let route = GlobalRoute {
            layer: 3,
            len_nm: 2000,
            via_ends: 2,
        };
        let w1 = route_wire(&tech, &route, 1);
        let w4 = route_wire(&tech, &route, 4);
        assert!(w4.r_ohm < w1.r_ohm / 3.0);
        assert!(w4.c_f > w1.c_f);
        // 2 µm of M3 at 60 Ω/µm = 120 Ω, plus two via stacks M1→M3.
        let expect_r = 120.0 + 2.0 * (22.0 + 18.0);
        assert!((w1.r_ohm - expect_r).abs() < 1e-9, "r = {}", w1.r_ohm);
    }

    #[test]
    fn interval_from_table4_like_curve() {
        // DP column of Table IV: min at index 3 (w = 4).
        let costs = [5.17, 4.40, 4.23, 4.21, 4.25, 4.33, 4.42];
        let (w_min, w_max) = interval_from_costs(&costs);
        assert_eq!(w_max, Some(5));
        assert!((2..=4).contains(&w_min), "w_min = {w_min}");
    }

    #[test]
    fn interval_unbounded_when_monotone() {
        let costs = [10.0, 6.0, 4.5, 4.0, 3.8, 3.7, 3.65];
        let (w_min, w_max) = interval_from_costs(&costs);
        assert_eq!(w_max, None);
        assert!(w_min >= 2, "knee at {w_min}");
    }

    #[test]
    fn reconcile_overlapping_takes_max_lower_bound() {
        let c1 = PortConstraint {
            net: "n3".into(),
            w_min: 1,
            w_max: None,
            costs: vec![5.0, 4.0, 3.5],
        };
        let c2 = PortConstraint {
            net: "n3".into(),
            w_min: 4,
            w_max: None,
            costs: vec![4.5, 3.4, 3.0],
        };
        let r = reconcile(&[c1, c2]);
        // The paper's Fig. 6 example: choose 4 routes at net 3.
        assert_eq!(r.w, 4);
        assert!(r.overlapped);
    }

    #[test]
    fn reconcile_disjoint_minimizes_summed_cost() {
        // Primitive A wants few wires (cost rises fast), B wants many.
        let a = PortConstraint {
            net: "x".into(),
            w_min: 1,
            w_max: Some(2),
            costs: vec![1.0, 1.0, 3.0, 6.0, 10.0, 15.0],
        };
        let b = PortConstraint {
            net: "x".into(),
            w_min: 5,
            w_max: None,
            costs: vec![9.0, 7.0, 5.0, 3.0, 2.0, 1.8],
        };
        let r = reconcile(&[a.clone(), b.clone()]);
        assert!(!r.overlapped);
        // Gap range [2, 5]: sums are 1+7=8, 3+5=8, 6+3=9, 10+2=12 → w = 2.
        assert_eq!(r.w, 2);
        let best: f64 = a.cost_at(r.w) + b.cost_at(r.w);
        for w in 2..=5 {
            assert!(best <= a.cost_at(w) + b.cost_at(w) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "no constraints")]
    fn reconcile_empty_panics() {
        let _ = reconcile(&[]);
    }

    #[test]
    fn em_floor_lifts_overlapped_reconciliation() {
        let mut cons = vec![
            PortConstraint {
                net: "n3".into(),
                w_min: 1,
                w_max: None,
                costs: vec![5.0, 4.0, 3.5],
            },
            PortConstraint {
                net: "n3".into(),
                w_min: 2,
                w_max: None,
                costs: vec![4.5, 3.4, 3.0],
            },
        ];
        clamp_to_em_floor(&mut cons, 4);
        let r = reconcile(&cons);
        assert!(r.overlapped);
        assert_eq!(r.w, 4, "EM floor must win over the cost-derived bound");
    }

    #[test]
    fn em_floor_keeps_disjoint_intervals_nonempty() {
        // Both upper bounds start below the floor; after clamping the
        // search range collapses onto the floor itself.
        let mut cons = vec![
            PortConstraint {
                net: "x".into(),
                w_min: 1,
                w_max: Some(2),
                costs: vec![1.0, 1.0, 3.0, 6.0, 10.0, 15.0],
            },
            PortConstraint {
                net: "x".into(),
                w_min: 3,
                w_max: Some(4),
                costs: vec![9.0, 7.0, 5.0, 3.0, 2.0, 1.8],
            },
        ];
        clamp_to_em_floor(&mut cons, 5);
        for c in &cons {
            assert!(c.w_max.is_none_or(|m| m >= c.w_min), "empty interval");
        }
        let r = reconcile(&cons);
        assert_eq!(r.w, 5);
    }

    #[test]
    fn em_floor_of_one_changes_nothing() {
        let orig = vec![PortConstraint {
            net: "y".into(),
            w_min: 2,
            w_max: Some(3),
            costs: vec![2.0, 1.0, 1.5],
        }];
        let mut cons = orig.clone();
        clamp_to_em_floor(&mut cons, 1);
        assert_eq!(cons, orig);
        clamp_to_em_floor(&mut cons, 0);
        assert_eq!(cons, orig);
    }

    #[test]
    fn dp_port_sweep_produces_u_shape() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        // The paper's setting: 2 µm of M3 at the drain.
        let mut routes = HashMap::new();
        routes.insert(
            "da".to_string(),
            GlobalRoute {
                layer: 3,
                len_nm: 2000,
                via_ends: 2,
            },
        );
        let cons = opt.port_constraints(dp, &bias, None, 960, &routes).unwrap();
        assert_eq!(cons.len(), 1);
        let c = &cons[0];
        assert_eq!(c.net, "da");
        assert_eq!(c.costs.len(), 8);
        // More wires reduce R-driven cost at first.
        assert!(
            c.costs[1] < c.costs[0],
            "first added wire should help: {:?}",
            c.costs
        );
        assert!(c.w_min >= 1);
        // Port-constraint sims were recorded: (1 + 8) runs × 3 metrics.
        assert_eq!(
            opt.counter().count(crate::Phase::PortConstraints),
            9 * dp.metrics.len()
        );
    }
}
