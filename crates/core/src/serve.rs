//! Serving vocabulary: per-request and per-batch outcome reports.
//!
//! The `prima-serve` crate runs batches of flow requests through a worker
//! pool with admission control, deadlines, retries, and load shedding.
//! These are the types its responses are made of; they live in core so
//! that flows, benches, and tests can speak about serving outcomes without
//! depending on the service implementation.

use crate::resilience::Health;
use prima_cache::CacheStats;

/// How one request resolved. Every submitted request resolves to **exactly
/// one** of these — the zero-lost-responses invariant the serve tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeOutcome {
    /// The flow finished clean within the deadline.
    Completed,
    /// A result was produced but with reduced fidelity or guarantees:
    /// repaired-after-faults flows, or requests shed under overload that
    /// return a shed notice instead of a layout.
    Degraded,
    /// Admission control refused the request up front (queue full).
    Rejected,
    /// The wall-clock deadline expired before a result was produced.
    DeadlineExceeded,
    /// The flow failed with a non-retryable error, or exhausted its
    /// retries on a retryable one.
    Failed,
}

impl std::fmt::Display for ServeOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServeOutcome::Completed => "completed",
            ServeOutcome::Degraded => "degraded",
            ServeOutcome::Rejected => "rejected",
            ServeOutcome::DeadlineExceeded => "deadline-exceeded",
            ServeOutcome::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// One request's resolution, as returned to its submitter.
#[derive(Debug, Clone)]
pub struct RequestReport {
    /// Service-assigned request id (unique within one server's lifetime).
    pub request_id: u64,
    /// The tenant the request ran under.
    pub tenant: String,
    /// Circuit name, for reporting.
    pub circuit: String,
    /// How the request resolved.
    pub outcome: ServeOutcome,
    /// Human-readable detail: the final error, the shed reason, or empty
    /// for a clean completion.
    pub detail: String,
    /// Flow attempts consumed (1 for a first-try success; >1 means
    /// retries; 0 when the request never ran — rejected, shed, or expired
    /// in the queue).
    pub attempts: u32,
    /// Time spent queued before a worker picked the request up.
    pub queue_ms: f64,
    /// Time spent executing (all attempts; 0 when the request never ran).
    pub service_ms: f64,
    /// Resilience health of the successful flow, when one ran to the end.
    pub health: Option<Health>,
    /// Serialized GDS-II stream of the finished layout, when the server
    /// was configured to stream out and the flow completed. Raw bytes —
    /// this crate stays format-agnostic; prima-gds re-parses them.
    pub gds: Option<Vec<u8>>,
}

impl RequestReport {
    /// Whether the submitter got a usable layout (possibly degraded).
    pub fn has_result(&self) -> bool {
        matches!(
            self.outcome,
            ServeOutcome::Completed | ServeOutcome::Degraded
        ) && self.attempts > 0
    }
}

/// Batch-level accounting across one server's lifetime (or one drain).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Every resolved request, in completion order.
    pub requests: Vec<RequestReport>,
    /// Requests refused by admission control (also present in `requests`
    /// with [`ServeOutcome::Rejected`]).
    pub rejected: u64,
    /// Requests shed by priority under overload.
    pub shed: u64,
    /// Total retry attempts beyond each request's first (retryable
    /// failures only; deterministic gate rejections never retry).
    pub retries: u64,
    /// Aggregate cache counters across every tenant namespace.
    pub cache: CacheStats,
    /// Number of distinct cache namespaces touched.
    pub cache_namespaces: usize,
}

impl ServeReport {
    /// Count of requests that resolved to `outcome`.
    pub fn count(&self, outcome: ServeOutcome) -> usize {
        self.requests
            .iter()
            .filter(|r| r.outcome == outcome)
            .count()
    }

    /// Total responses produced. Zero lost responses means this equals the
    /// number of submissions the caller made.
    pub fn total(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcome: ServeOutcome, attempts: u32) -> RequestReport {
        RequestReport {
            request_id: 1,
            tenant: "t".into(),
            circuit: "c".into(),
            outcome,
            detail: String::new(),
            attempts,
            queue_ms: 0.0,
            service_ms: 0.0,
            health: None,
            gds: None,
        }
    }

    #[test]
    fn outcome_counting() {
        let mut r = ServeReport::default();
        r.requests.push(report(ServeOutcome::Completed, 1));
        r.requests.push(report(ServeOutcome::Completed, 2));
        r.requests.push(report(ServeOutcome::Rejected, 0));
        assert_eq!(r.count(ServeOutcome::Completed), 2);
        assert_eq!(r.count(ServeOutcome::Rejected), 1);
        assert_eq!(r.count(ServeOutcome::Failed), 0);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn has_result_requires_an_attempt() {
        assert!(report(ServeOutcome::Completed, 1).has_result());
        assert!(report(ServeOutcome::Degraded, 1).has_result());
        // A shed request reports Degraded but never ran: no result.
        assert!(!report(ServeOutcome::Degraded, 0).has_result());
        assert!(!report(ServeOutcome::Rejected, 0).has_result());
        assert!(!report(ServeOutcome::DeadlineExceeded, 1).has_result());
    }

    #[test]
    fn outcomes_display() {
        assert_eq!(
            ServeOutcome::DeadlineExceeded.to_string(),
            "deadline-exceeded"
        );
        assert_eq!(ServeOutcome::Completed.to_string(), "completed");
    }
}
