//! Primitive tuning (Algorithm 1, step 2): add parallel wires at the
//! tuning terminals of a selected layout until the cost stops improving —
//! or, on a monotonically decreasing curve, stop at the point of maximum
//! curvature (diminishing returns).

use prima_layout::PrimitiveLayout;
use prima_primitives::{Bias, PrimitiveDef, TuningTerminal};

use crate::accounting::Phase;
use crate::selection::Evaluated;
use crate::{OptError, Optimizer};

/// Picks the stopping index on a cost-vs-wires curve (`costs[i]` is the
/// cost at `i + 1` wires): the global minimum when the curve turns upward,
/// otherwise the maximum-curvature point of the decreasing curve.
pub(crate) fn choose_knee(costs: &[f64]) -> usize {
    debug_assert!(!costs.is_empty());
    let imin = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    if imin + 1 < costs.len() {
        // The curve turns upward after imin: the minimum is the stop point.
        return imin;
    }
    // Monotone decreasing: maximum discrete curvature.
    if costs.len() < 3 {
        return costs.len() - 1;
    }
    let mut best = costs.len() - 1;
    let mut best_k = f64::NEG_INFINITY;
    for i in 1..costs.len() - 1 {
        let k = costs[i - 1] - 2.0 * costs[i] + costs[i + 1];
        if k > best_k {
            best_k = k;
            best = i;
        }
    }
    best
}

impl<'t> Optimizer<'t> {
    /// Algorithm 1, step 2: tunes each terminal of `layout`, returning the
    /// final evaluated (minimum-cost) configuration.
    ///
    /// Uncorrelated terminals are optimized separately in library order;
    /// correlated terminal groups are swept jointly over the Cartesian
    /// product of wire counts (practically ≤ 2 terminals, per the paper).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn tune(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        layout: PrimitiveLayout,
    ) -> Result<Evaluated, OptError> {
        let sch = self.schematic_reference(def, bias, layout.config.total_fins())?;
        let mut current = layout;

        // Group terminals: correlated pairs first-come, the rest singleton.
        let mut groups: Vec<Vec<&TuningTerminal>> = Vec::new();
        let mut used: Vec<&str> = Vec::new();
        for t in &def.tuning {
            if used.contains(&t.name.as_str()) {
                continue;
            }
            let mut group = vec![t];
            used.push(&t.name);
            if let Some(other_name) = &t.correlated_with {
                if let Some(other) = def.terminal(other_name) {
                    if !used.contains(&other.name.as_str()) {
                        group.push(other);
                        used.push(&other.name);
                    }
                }
            }
            groups.push(group);
        }

        for group in groups {
            if group.len() == 1 {
                current = self.tune_single(def, bias, current, group[0], &sch)?;
            } else {
                current = self.tune_joint(def, bias, current, &group, &sch)?;
            }
        }
        self.evaluate_layout(def, bias, current, &sch, Phase::Tuning)
    }

    /// Sweeps one terminal independently and applies the knee point.
    // The `expect`s re-raise panics out of the crossbeam sweep workers; a
    // panicked sweep point has no result to salvage.
    #[allow(clippy::expect_used)]
    fn tune_single(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        layout: PrimitiveLayout,
        terminal: &TuningTerminal,
        sch: &prima_primitives::MetricValues,
    ) -> Result<PrimitiveLayout, OptError> {
        // Every sweep point is an independent simulation (Table V).
        let results: Vec<Result<f64, OptError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (1..=self.max_tuning_wires)
                .map(|k| {
                    let layout = &layout;
                    scope.spawn(move |_| -> Result<f64, OptError> {
                        let mut cand = layout.clone();
                        for net in &terminal.nets {
                            cand.set_parallel_wires(net, k)?;
                        }
                        Ok(self
                            .evaluate_layout(def, bias, cand, sch, Phase::Tuning)?
                            .cost)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tuning sweep panicked"))
                .collect()
        })
        .expect("tuning scope panicked");
        let costs: Vec<f64> = results.into_iter().collect::<Result<_, _>>()?;
        let k_star = choose_knee(&costs) as u32 + 1;
        let mut out = layout;
        for net in &terminal.nets {
            out.set_parallel_wires(net, k_star)?;
        }
        Ok(out)
    }

    /// Joint sweep over a correlated terminal group.
    // `best` is seeded by the first combination before the odometer can
    // terminate, so the `expect` states a loop invariant.
    #[allow(clippy::expect_used)]
    fn tune_joint(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        layout: PrimitiveLayout,
        group: &[&TuningTerminal],
        sch: &prima_primitives::MetricValues,
    ) -> Result<PrimitiveLayout, OptError> {
        // Enumerate the Cartesian product of wire counts (group.len() ≤ 2 in
        // practice). The joint sweep is capped tighter than the independent
        // one — the paper's CSI example explores ~9 combinations.
        let kmax = self.max_tuning_wires.min(4);
        let mut best: Option<(Vec<u32>, f64)> = None;
        let mut combo = vec![1u32; group.len()];
        loop {
            let mut cand = layout.clone();
            for (t, &k) in group.iter().zip(combo.iter()) {
                for net in &t.nets {
                    cand.set_parallel_wires(net, k)?;
                }
            }
            let ev = self.evaluate_layout(def, bias, cand, sch, Phase::Tuning)?;
            if best.as_ref().map(|(_, c)| ev.cost < *c).unwrap_or(true) {
                best = Some((combo.clone(), ev.cost));
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == combo.len() {
                    let (ks, _) = best.expect("at least one combo evaluated");
                    let mut out = layout;
                    for (t, &k) in group.iter().zip(ks.iter()) {
                        for net in &t.nets {
                            out.set_parallel_wires(net, k)?;
                        }
                    }
                    return Ok(out);
                }
                if combo[i] < kmax {
                    combo[i] += 1;
                    break;
                }
                combo[i] = 1;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_layout::{generate, CellConfig, PlacementPattern};
    use prima_pdk::Technology;
    use prima_primitives::Library;

    #[test]
    fn knee_prefers_interior_minimum() {
        // Table IV DP column: min at w=4 (index 3).
        let costs = [5.17, 4.40, 4.23, 4.21, 4.25, 4.33, 4.42];
        assert_eq!(choose_knee(&costs), 3);
    }

    #[test]
    fn knee_on_monotone_curve_uses_curvature() {
        // Sharp elbow at index 1.
        let costs = [10.0, 4.0, 3.5, 3.2, 3.0];
        assert_eq!(choose_knee(&costs), 1);
    }

    #[test]
    fn knee_degenerate_inputs() {
        assert_eq!(choose_knee(&[1.0]), 0);
        assert_eq!(choose_knee(&[2.0, 1.0]), 1);
        // Flat curve: minimum is the first point.
        assert_eq!(choose_knee(&[1.0, 1.0, 1.0]), 0);
    }

    #[test]
    fn tuning_never_increases_cost() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = prima_primitives::Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        let layout = generate(
            &tech,
            &dp.spec,
            &CellConfig::new(8, 12, 2, PlacementPattern::Abba),
        )
        .unwrap();
        let sch = opt
            .schematic_reference(dp, &bias, layout.config.total_fins())
            .unwrap();
        let before = opt
            .evaluate_layout(dp, &bias, layout.clone(), &sch, crate::Phase::Selection)
            .unwrap();
        let tuned = opt.tune(dp, &bias, layout).unwrap();
        assert!(
            tuned.cost <= before.cost + 1e-9,
            "tuning worsened cost: {} -> {}",
            before.cost,
            tuned.cost
        );
        // The tuned layout actually uses extra wires somewhere (the source
        // net of a DP is the classic win) unless the baseline was optimal.
        let sims = opt.counter().count(crate::Phase::Tuning);
        assert!(sims > 0);
    }

    #[test]
    fn correlated_terminals_sweep_jointly() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let csi = lib.get("csi").unwrap();
        let bias = prima_primitives::Bias::nominal(&tech, &csi.class);
        let mut opt = Optimizer::new(&tech);
        opt.max_tuning_wires = 3; // keep the joint sweep small in tests
        let layout = generate(
            &tech,
            &csi.spec,
            &CellConfig::new(4, 4, 1, PlacementPattern::Abab),
        )
        .unwrap();
        let tuned = opt.tune(csi, &bias, layout).unwrap();
        assert!(tuned.cost.is_finite());
        // Joint sweep of 2 correlated terminals at kmax=3 → 9 combos of
        // 3 metrics each, plus the final evaluation and schematic reference.
        let sims = opt.counter().total();
        assert!(sims >= 9 * 3, "sims = {sims}");
    }
}
