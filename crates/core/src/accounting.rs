//! Simulation-count accounting per optimization phase (paper Table V).
//!
//! Every metric evaluation is one "simulation". The counts per phase —
//! selection, tuning, port constraints — reproduce the paper's runtime
//! analysis, including the observation that simulations within a phase are
//! independent and parallelizable.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Optimization phase a simulation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Algorithm 1 step 1: primitive selection.
    Selection,
    /// Algorithm 1 step 2: primitive tuning.
    Tuning,
    /// Algorithm 2 step 1: port-constraint generation.
    PortConstraints,
    /// Algorithm 2 step 2: reconciliation re-simulation.
    Reconciliation,
    /// PVT corner / Monte-Carlo mismatch re-evaluation of surviving
    /// candidates (the variation stage layered on top of Algorithm 1).
    Corners,
}

impl Phase {
    /// All phases in flow order.
    pub const ALL: [Phase; 5] = [
        Phase::Selection,
        Phase::Tuning,
        Phase::PortConstraints,
        Phase::Reconciliation,
        Phase::Corners,
    ];
}

/// Thread-safe simulation counter, cloneable across worker threads.
#[derive(Debug, Clone, Default)]
pub struct SimCounter {
    counts: Arc<Mutex<[usize; 5]>>,
}

impl SimCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` simulations in a phase.
    pub fn record(&self, phase: Phase, n: usize) {
        self.counts.lock()[phase_index(phase)] += n;
    }

    /// Count for one phase.
    pub fn count(&self, phase: Phase) -> usize {
        self.counts.lock()[phase_index(phase)]
    }

    /// Total across phases.
    pub fn total(&self) -> usize {
        self.counts.lock().iter().sum()
    }

    /// Resets all counts to zero.
    pub fn reset(&self) {
        *self.counts.lock() = [0; 5];
    }
}

fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Selection => 0,
        Phase::Tuning => 1,
        Phase::PortConstraints => 2,
        Phase::Reconciliation => 3,
        Phase::Corners => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_phase() {
        let c = SimCounter::new();
        c.record(Phase::Selection, 60);
        c.record(Phase::Tuning, 21);
        c.record(Phase::PortConstraints, 32);
        c.record(Phase::Selection, 1);
        assert_eq!(c.count(Phase::Selection), 61);
        assert_eq!(c.count(Phase::Tuning), 21);
        assert_eq!(c.total(), 114);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn clones_share_state() {
        let c = SimCounter::new();
        let c2 = c.clone();
        std::thread::spawn(move || c2.record(Phase::Tuning, 5))
            .join()
            .unwrap();
        assert_eq!(c.count(Phase::Tuning), 5);
    }
}
