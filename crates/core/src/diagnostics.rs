//! Structured diagnostics shared by every static gate.
//!
//! Both sign-off passes — `prima-verify` (geometry + connectivity) and
//! `prima-erc` (electrical rules + symmetry lints) — report through the
//! same types: a [`Violation`] names the rule that fired, where, and by
//! how much; a [`VerifyReport`] aggregates one pass. Keeping the types
//! here (below both crates in the dependency graph) means the flow can
//! gate on either report identically and bench tooling prints them with
//! one code path.

use std::fmt;

use prima_geom::Rect;
use serde::{Deserialize, Serialize};

/// How bad a finding is. Gates fail on [`Severity::Error`]; warnings and
/// degradations are surfaced but do not abort a flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Must be fixed; the gate fails.
    #[default]
    Error,
    /// Suspicious but not fatal; reported without failing the gate.
    Warning,
    /// The check itself ran in a degraded (conservative) mode — e.g. a
    /// current-propagation pass that fell back to worst-case bounds — so
    /// the result is safe but less precise than intended. Reported without
    /// failing the gate; resilience tooling aggregates these.
    Degraded,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Degraded => "degraded",
        })
    }
}

/// What kind of check produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// Shape narrower than the layer's minimum width.
    Width,
    /// Same-layer clearance below minimum spacing.
    Spacing,
    /// Connected component below minimum area.
    Area,
    /// Shape off its placement grid.
    Grid,
    /// Via cut insufficiently enclosed by metal.
    Enclosure,
    /// Geometric overlap of shapes on different nets.
    Short,
    /// Overlapping placed cell outlines.
    Placement,
    /// Net electrically broken (or a pin left unreached).
    Open,
    /// Expected net with no drawn wiring at all.
    Missing,
    /// Flow-level consistency lint (weights, bins, port intervals).
    Lint,
    /// Electromigration: current density beyond a wire or via limit.
    Em,
    /// Static IR drop on a supply net beyond the technology budget.
    Ir,
    /// Symmetry or matching constraint not honored in geometry.
    Symmetry,
    /// Floating gate: a net that nothing drives.
    Floating,
    /// Declared primitive port left unconnected.
    Dangling,
    /// Cell farther from a well tap row than the technology allows.
    Tap,
}

impl RuleKind {
    /// `true` for the kinds produced by the electrical (ERC) pass.
    pub fn is_electrical(self) -> bool {
        matches!(
            self,
            RuleKind::Em
                | RuleKind::Ir
                | RuleKind::Symmetry
                | RuleKind::Floating
                | RuleKind::Dangling
                | RuleKind::Tap
        )
    }
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleKind::Width => "width",
            RuleKind::Spacing => "spacing",
            RuleKind::Area => "area",
            RuleKind::Grid => "grid",
            RuleKind::Enclosure => "enclosure",
            RuleKind::Short => "short",
            RuleKind::Placement => "placement",
            RuleKind::Open => "open",
            RuleKind::Missing => "missing",
            RuleKind::Lint => "lint",
            RuleKind::Em => "em",
            RuleKind::Ir => "ir",
            RuleKind::Symmetry => "symmetry",
            RuleKind::Floating => "floating",
            RuleKind::Dangling => "dangling",
            RuleKind::Tap => "tap",
        };
        f.write_str(s)
    }
}

/// One structured diagnostic: which rule failed, where, and by how much.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable rule identifier, e.g. `"M2.SPACE"`, `"LVS.OPEN"`,
    /// `"EM.WIDTH"`, `"SYM.MIRROR"`, `"LINT.WEIGHTS"`.
    pub rule_id: String,
    /// What kind of check fired.
    pub kind: RuleKind,
    /// How bad the finding is.
    pub severity: Severity,
    /// Drawn layer involved, when the rule is geometric.
    pub layer: Option<String>,
    /// Cell instance or net the violation belongs to, when known.
    pub scope: Option<String>,
    /// Offending rectangles (cell-local for cell DRC, chip coordinates
    /// for placement/routing checks).
    pub rects: Vec<Rect>,
    /// Measured value (nm, nm² for area; µV or µA for electrical rules),
    /// when the rule is quantitative.
    pub found: Option<i64>,
    /// Required value the measurement failed against.
    pub required: Option<i64>,
    /// Human-readable one-line explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule_id, self.message)?;
        if let (Some(found), Some(required)) = (self.found, self.required) {
            write!(f, " (found {found}, required {required})")?;
        }
        Ok(())
    }
}

/// Aggregated result of a verification pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Circuit (or cell) the pass ran on.
    pub circuit: String,
    /// Names of the checks that actually ran, in order.
    pub checks_run: Vec<String>,
    /// All violations found, in discovery order.
    pub violations: Vec<Violation>,
    /// Number of nets examined by the connectivity pass.
    pub nets_checked: usize,
    /// Number of rectangles examined by the DRC pass.
    pub rects_checked: usize,
}

impl VerifyReport {
    /// `true` when no check fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one kind.
    pub fn count(&self, kind: RuleKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// `true` when no [`Severity::Error`] finding fired — degraded-mode
    /// and warning diagnostics may still be present. This is the predicate
    /// flow gates fail on.
    pub fn is_passing(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of [`Severity::Degraded`] findings (checks that ran in a
    /// conservative fallback mode).
    pub fn degraded_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Degraded)
            .count()
    }

    /// `true` if some violation carries the given rule id.
    pub fn has_rule(&self, rule_id: &str) -> bool {
        self.violations.iter().any(|v| v.rule_id == rule_id)
    }

    /// One-line summary suitable for a bench report.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "{}: clean ({} rects, {} nets, {} checks)",
                self.circuit,
                self.rects_checked,
                self.nets_checked,
                self.checks_run.len()
            )
        } else {
            format!(
                "{}: {} violation(s) — drc {} / lvs {} / erc {} / lint {}",
                self.circuit,
                self.violations.len(),
                self.violations
                    .iter()
                    .filter(|v| {
                        !v.kind.is_electrical()
                            && !matches!(
                                v.kind,
                                RuleKind::Open
                                    | RuleKind::Missing
                                    | RuleKind::Short
                                    | RuleKind::Lint
                            )
                    })
                    .count(),
                self.violations
                    .iter()
                    .filter(|v| {
                        matches!(v.kind, RuleKind::Open | RuleKind::Missing | RuleKind::Short)
                    })
                    .count(),
                self.violations
                    .iter()
                    .filter(|v| v.kind.is_electrical())
                    .count(),
                self.count(RuleKind::Lint),
            )
        }
    }

    /// Records that a named check ran and appends its findings.
    pub fn absorb(&mut self, check: &str, mut violations: Vec<Violation>) {
        self.checks_run.push(check.to_string());
        self.violations.append(&mut violations);
    }

    /// Puts the report into canonical form: violations in the stable
    /// [`sort_dedupe`] order with exact duplicates removed. Every gate
    /// (verify, erc, schem) finalizes before returning, so repeated runs —
    /// and runs over shuffled input orders — produce identical reports.
    pub fn finalize(&mut self) {
        sort_dedupe(&mut self.violations);
    }
}

/// Stable severity rank: errors first, then warnings, then degradations —
/// the order a reader triages them in.
fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Degraded => 2,
    }
}

/// Sorts a violation list into a stable canonical order — severity
/// (errors first), then rule id, scope, layer, measured values, message —
/// and removes exact duplicates. Input order never leaks through: two gate
/// runs that discover the same findings in different orders (parallel
/// sweeps, shuffled instance iteration) finalize to the same list, and a
/// finding reported twice by overlapping checks appears once.
pub fn sort_dedupe(violations: &mut Vec<Violation>) {
    violations.sort_by(|a, b| {
        severity_rank(a.severity)
            .cmp(&severity_rank(b.severity))
            .then_with(|| a.rule_id.cmp(&b.rule_id))
            .then_with(|| a.scope.cmp(&b.scope))
            .then_with(|| a.layer.cmp(&b.layer))
            .then_with(|| a.found.cmp(&b.found))
            .then_with(|| a.required.cmp(&b.required))
            .then_with(|| a.message.cmp(&b.message))
            .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
            .then_with(|| a.rects.len().cmp(&b.rects.len()))
    });
    violations.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule_id: &str, kind: RuleKind, severity: Severity) -> Violation {
        Violation {
            rule_id: rule_id.to_string(),
            kind,
            severity,
            layer: None,
            scope: None,
            rects: Vec::new(),
            found: Some(3),
            required: Some(2),
            message: "test finding".to_string(),
        }
    }

    #[test]
    fn report_counts_by_kind_severity_and_rule() {
        let mut report = VerifyReport {
            circuit: "fixture".into(),
            ..VerifyReport::default()
        };
        report.absorb("erc.em", vec![v("EM.WIDTH", RuleKind::Em, Severity::Error)]);
        report.absorb(
            "erc.symmetry",
            vec![v("SYM.MIRROR", RuleKind::Symmetry, Severity::Warning)],
        );
        assert!(!report.is_clean());
        assert_eq!(report.count(RuleKind::Em), 1);
        assert_eq!(report.error_count(), 1);
        assert!(report.has_rule("SYM.MIRROR"));
        assert!(!report.has_rule("IR.BUDGET"));
        assert_eq!(report.checks_run, vec!["erc.em", "erc.symmetry"]);
        assert!(report.summary().contains("erc 2"));
    }

    #[test]
    fn violation_display_includes_measurement() {
        let s = v("EM.WIDTH", RuleKind::Em, Severity::Error).to_string();
        assert_eq!(s, "EM.WIDTH: test finding (found 3, required 2)");
    }

    #[test]
    fn sort_dedupe_orders_by_severity_then_rule_and_drops_duplicates() {
        let mut list = vec![
            v("SYM.MIRROR", RuleKind::Symmetry, Severity::Warning),
            v("EM.WIDTH", RuleKind::Em, Severity::Error),
            v("EM.WIDTH", RuleKind::Em, Severity::Error),
            v("EM.VIA", RuleKind::Em, Severity::Error),
        ];
        sort_dedupe(&mut list);
        assert_eq!(list.len(), 3, "exact duplicate removed");
        assert_eq!(list[0].rule_id, "EM.VIA");
        assert_eq!(list[1].rule_id, "EM.WIDTH");
        assert_eq!(list[2].rule_id, "SYM.MIRROR", "warnings sort last");
    }

    #[test]
    fn sort_dedupe_is_input_order_independent() {
        let items = vec![
            v("A.ONE", RuleKind::Lint, Severity::Warning),
            v("B.TWO", RuleKind::Short, Severity::Error),
            v("A.TWO", RuleKind::Lint, Severity::Error),
            v("B.TWO", RuleKind::Short, Severity::Error),
        ];
        let mut fwd = items.clone();
        let mut rev: Vec<Violation> = items.into_iter().rev().collect();
        sort_dedupe(&mut fwd);
        sort_dedupe(&mut rev);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn finalize_canonicalizes_a_report() {
        let mut report = VerifyReport::default();
        report.absorb("x", vec![v("Z.RULE", RuleKind::Lint, Severity::Warning)]);
        report.absorb("y", vec![v("A.RULE", RuleKind::Lint, Severity::Error)]);
        report.absorb("y2", vec![v("A.RULE", RuleKind::Lint, Severity::Error)]);
        report.finalize();
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.violations[0].rule_id, "A.RULE");
        // checks_run keeps its run order; only findings are canonicalized.
        assert_eq!(report.checks_run, vec!["x", "y", "y2"]);
    }

    #[test]
    fn diagnostics_are_serializable() {
        // Compile-time check that the full tree implements Serialize and
        // Deserialize (the workspace keeps serde formats out of its deps).
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<VerifyReport>();
        assert_serde::<Violation>();
    }
}
