//! Fault injection and graceful-degradation bookkeeping for the flow.
//!
//! A production layout flow runs hundreds of candidate evaluations through
//! the simulator and a routing stage behind them; any of those can fail
//! (Newton non-convergence, router congestion, a winner flunking a
//! sign-off gate). This module holds the pieces that make every recovery
//! path deterministic and testable:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded, deterministic harness
//!   that forces candidate-evaluation failures (non-convergence or
//!   panics) and detail-route congestion on chosen nets, so CI can
//!   exercise the repair machinery without flaky timing tricks.
//! * [`EvalLedger`] — the record of every candidate evaluation that
//!   failed or panicked during Algorithm 1; the repair loop consults it
//!   so a candidate that already failed is never re-selected.
//! * [`RepairCursor`] — pure per-bin fallback bookkeeping used when a
//!   selected winner later fails a gate: advance to the next-best
//!   surviving candidate of the same aspect-ratio bin.
//! * [`RepairBudgets`] — explicit per-stage attempt limits so degradation
//!   is bounded, never a busy loop.
//! * [`ResilienceReport`] / [`Health`] — what the flow hands back: every
//!   degradation taken, retries spent, candidates lost, and a final
//!   health verdict.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Deterministic 64-bit FNV-1a over a seed, a name, and an index; the
/// basis of reproducible fault selection (no RNG state to carry around).
fn fault_hash(seed: u64, name: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= index;
    h = h.wrapping_mul(0x100000001b3);
    // Final avalanche so low bits are usable as a uniform fraction.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 33)
}

/// A fault forced into one candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalFault {
    /// The evaluation reports Newton non-convergence (a typed error).
    NonConvergence,
    /// The evaluation panics mid-flight (tests the `catch`-at-join path).
    Panic,
}

/// Source of injected faults. The flow carries one of these through every
/// stage; the default implementation injects nothing, so production runs
/// pay only a virtual call per candidate.
pub trait FaultInjector: Sync {
    /// Fault to apply to candidate `candidate` of primitive `def`, if any.
    fn eval_fault(&self, def: &str, candidate: usize) -> Option<EvalFault> {
        let _ = (def, candidate);
        None
    }

    /// Number of detail-route attempts to force-fail for `net`.
    fn route_failures(&self, net: &str) -> u32 {
        let _ = net;
        0
    }
}

/// The no-op injector production flows run with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// A deterministic, seeded fault schedule.
///
/// Which candidate evaluations fail is a pure function of
/// `(seed, def, candidate)`, so a plan reproduces exactly across runs and
/// machines; a zero plan (`FaultPlan::none()`) injects nothing at all.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into the per-candidate hash.
    pub seed: u64,
    /// Fraction of candidate evaluations forced into non-convergence,
    /// in `[0, 1]`.
    pub eval_fail_rate: f64,
    /// Specific candidate evaluations forced to panic:
    /// `(primitive def name, candidate index)`.
    pub eval_panics: Vec<(String, usize)>,
    /// Nets whose first `n` detail-route attempts are forced to report
    /// congestion: `(net, n)`.
    pub route_faults: Vec<(String, u32)>,
}

impl FaultPlan {
    /// A plan that injects nothing (the control arm).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A seeded plan with no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the candidate-evaluation failure fraction.
    #[must_use]
    pub fn with_eval_fail_rate(mut self, rate: f64) -> Self {
        self.eval_fail_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Forces candidate `candidate` of `def` to panic during evaluation.
    #[must_use]
    pub fn with_eval_panic(mut self, def: &str, candidate: usize) -> Self {
        self.eval_panics.push((def.to_string(), candidate));
        self
    }

    /// Forces the first `failures` detail-route attempts of `net` to fail.
    #[must_use]
    pub fn with_route_fault(mut self, net: &str, failures: u32) -> Self {
        self.route_faults.push((net.to_string(), failures));
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_zero(&self) -> bool {
        self.eval_fail_rate <= 0.0 && self.eval_panics.is_empty() && self.route_faults.is_empty()
    }
}

impl FaultInjector for FaultPlan {
    fn eval_fault(&self, def: &str, candidate: usize) -> Option<EvalFault> {
        if self
            .eval_panics
            .iter()
            .any(|(d, c)| d == def && *c == candidate)
        {
            return Some(EvalFault::Panic);
        }
        if self.eval_fail_rate > 0.0 {
            let h = fault_hash(self.seed, def, candidate as u64);
            // Uniform fraction from the top 53 bits.
            let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
            if frac < self.eval_fail_rate {
                return Some(EvalFault::NonConvergence);
            }
        }
        None
    }

    fn route_failures(&self, net: &str) -> u32 {
        self.route_faults
            .iter()
            .filter(|(n, _)| n == net)
            .map(|&(_, c)| c)
            .sum()
    }
}

/// One candidate evaluation that failed during Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Primitive definition the candidate belonged to.
    pub def: String,
    /// Candidate index within the enumerated configuration list.
    pub candidate: usize,
    /// `true` when the evaluation panicked (vs. returning a typed error).
    pub panicked: bool,
    /// The failure, formatted.
    pub reason: String,
}

/// The record of failed candidate evaluations. Selection writes to it;
/// the repair loop reads it so no failed candidate is ever re-selected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalLedger {
    entries: Vec<LedgerEntry>,
}

impl EvalLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EvalLedger::default()
    }

    /// Records one failed candidate evaluation.
    pub fn record(&mut self, def: &str, candidate: usize, panicked: bool, reason: String) {
        self.entries.push(LedgerEntry {
            def: def.to_string(),
            candidate,
            panicked,
            reason,
        });
    }

    /// `true` when candidate `candidate` of `def` is recorded as failed.
    pub fn is_failed(&self, def: &str, candidate: usize) -> bool {
        self.entries
            .iter()
            .any(|e| e.def == def && e.candidate == candidate)
    }

    /// Every recorded failure, in discovery order.
    pub fn failures(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total candidates lost (failed or panicked).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many recorded failures were panics.
    pub fn panics(&self) -> usize {
        self.entries.iter().filter(|e| e.panicked).count()
    }
}

/// Per-bin fallback bookkeeping for gate repair: which rank of each
/// aspect-ratio bin is currently selected. Pure data, so the policy
/// ("advance to the next survivor not recorded as failed, within budget")
/// is property-testable without running a single simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairCursor {
    next_rank: Vec<usize>,
}

impl RepairCursor {
    /// A cursor over `n_bins` bins, all at their original winners.
    pub fn new(n_bins: usize) -> Self {
        RepairCursor {
            next_rank: vec![0; n_bins],
        }
    }

    /// The rank currently selected in `bin` (0 = original winner).
    pub fn current(&self, bin: usize) -> usize {
        self.next_rank.get(bin).copied().unwrap_or(0)
    }

    /// `true` when `bin` still has an untried candidate below `bin_len`.
    pub fn has_fallback(&self, bin: usize, bin_len: usize) -> bool {
        self.current(bin) + 1 < bin_len
    }

    /// Advances `bin` to its next candidate that is not recorded as failed
    /// in `ledger`, returning the new rank. `candidates` lists the bin's
    /// members best-first as `(def, candidate index)`. Returns `None` when
    /// the bin is exhausted; the cursor then pins past the end so repeated
    /// calls stay exhausted (termination is structural, not probabilistic).
    pub fn demote(
        &mut self,
        bin: usize,
        candidates: &[(String, usize)],
        ledger: &EvalLedger,
    ) -> Option<usize> {
        if bin >= self.next_rank.len() {
            return None;
        }
        let mut rank = self.next_rank[bin] + 1;
        while rank < candidates.len() {
            let (def, cand) = &candidates[rank];
            if !ledger.is_failed(def, *cand) {
                self.next_rank[bin] = rank;
                return Some(rank);
            }
            rank += 1;
        }
        self.next_rank[bin] = candidates.len().max(1);
        None
    }
}

/// Explicit per-stage attempt limits for the repair loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairBudgets {
    /// Detail-routing attempts per placement (first try + retries with
    /// perturbed net ordering). At least 1.
    pub route_attempts: u32,
    /// Full place/route/gate iterations (first try + candidate-fallback
    /// retries after a gate failure). At least 1.
    pub gate_attempts: u32,
}

impl Default for RepairBudgets {
    fn default() -> Self {
        RepairBudgets {
            route_attempts: 3,
            gate_attempts: 3,
        }
    }
}

/// Final health of a flow run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// No degradation of any kind: the result is exactly what a fault-free
    /// run produces.
    #[default]
    Clean,
    /// The flow completed and passed its gates, but took at least one
    /// documented degradation (lost candidates, retries, fallbacks).
    Degraded,
    /// The flow could not complete within its budgets.
    Failed,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Health::Clean => "clean",
            Health::Degraded => "degraded",
            Health::Failed => "failed",
        })
    }
}

/// One degradation the flow took instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Stage that degraded: `"selection"`, `"tuning"`, `"routing"`,
    /// `"gate"`, `"erc"`.
    pub stage: String,
    /// Instance, net, or circuit the degradation applies to.
    pub scope: String,
    /// What the flow did about it.
    pub action: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.scope, self.action)
    }
}

/// Everything a flow run reports about its own resilience: every
/// degradation taken, retries spent, candidates lost, and the verdict.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Final health verdict.
    pub health: Health,
    /// Every degradation, in the order taken.
    pub degradations: Vec<Degradation>,
    /// Candidate evaluations lost during Algorithm 1 (from the ledger).
    pub candidates_lost: usize,
    /// Of the lost candidates, how many panicked.
    pub candidate_panics: usize,
    /// Detail-routing retries spent (beyond each first attempt).
    pub route_retries: u32,
    /// Gate-failure repair iterations spent (beyond the first).
    pub gate_retries: u32,
}

impl ResilienceReport {
    /// A pristine report (health [`Health::Clean`], nothing recorded).
    pub fn new() -> Self {
        ResilienceReport::default()
    }

    /// Records a degradation and downgrades health to
    /// [`Health::Degraded`] (unless already [`Health::Failed`]).
    pub fn record(&mut self, stage: &str, scope: &str, action: String) {
        self.degradations.push(Degradation {
            stage: stage.to_string(),
            scope: scope.to_string(),
            action,
        });
        if self.health == Health::Clean {
            self.health = Health::Degraded;
        }
    }

    /// Folds the ledger's losses into the report (and the verdict).
    pub fn absorb_ledger(&mut self, ledger: &EvalLedger) {
        self.candidates_lost = ledger.len();
        self.candidate_panics = ledger.panics();
        if self.candidates_lost > 0 && self.health == Health::Clean {
            self.health = Health::Degraded;
        }
    }

    /// `true` when the run took no degradation at all.
    pub fn is_clean(&self) -> bool {
        self.health == Health::Clean
            && self.degradations.is_empty()
            && self.candidates_lost == 0
            && self.route_retries == 0
            && self.gate_retries == 0
    }

    /// One-line summary for bench reports.
    pub fn summary(&self) -> String {
        format!(
            "health {} — {} degradation(s), {} candidate(s) lost ({} panicked), \
             {} route retry(ies), {} gate retry(ies)",
            self.health,
            self.degradations.len(),
            self.candidates_lost,
            self.candidate_panics,
            self.route_retries,
            self.gate_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic_and_seeded() {
        let plan = FaultPlan::new(7).with_eval_fail_rate(0.3);
        for cand in 0..50 {
            assert_eq!(plan.eval_fault("dp", cand), plan.eval_fault("dp", cand));
        }
        // A different seed gives a different (but still deterministic)
        // pattern over enough candidates.
        let other = FaultPlan::new(8).with_eval_fail_rate(0.3);
        let a: Vec<_> = (0..64).map(|c| plan.eval_fault("dp", c)).collect();
        let b: Vec<_> = (0..64).map(|c| other.eval_fault("dp", c)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_rate_hits_roughly_the_requested_fraction() {
        let plan = FaultPlan::new(3).with_eval_fail_rate(0.3);
        let hits = (0..1000)
            .filter(|&c| plan.eval_fault("cm", c).is_some())
            .count();
        assert!((200..400).contains(&hits), "hit {hits}/1000 at rate 0.3");
    }

    #[test]
    fn eval_panics_and_route_faults_are_exact() {
        let plan = FaultPlan::new(1)
            .with_eval_panic("dp", 4)
            .with_route_fault("vout", 2);
        assert_eq!(plan.eval_fault("dp", 4), Some(EvalFault::Panic));
        assert_eq!(plan.eval_fault("dp", 5), None);
        assert_eq!(plan.route_failures("vout"), 2);
        assert_eq!(plan.route_failures("vin"), 0);
        assert!(!plan.is_zero());
        assert!(FaultPlan::none().is_zero());
    }

    #[test]
    fn ledger_records_and_looks_up() {
        let mut ledger = EvalLedger::new();
        assert!(ledger.is_empty());
        ledger.record("dp", 3, false, "no convergence".into());
        ledger.record("dp", 9, true, "panicked".into());
        assert!(ledger.is_failed("dp", 3));
        assert!(ledger.is_failed("dp", 9));
        assert!(!ledger.is_failed("dp", 4));
        assert!(!ledger.is_failed("cm", 3));
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.panics(), 1);
    }

    #[test]
    fn cursor_skips_ledger_failures_and_exhausts() {
        let mut ledger = EvalLedger::new();
        ledger.record("dp", 11, false, "failed".into());
        let bin: Vec<(String, usize)> = [10usize, 11, 12]
            .iter()
            .map(|&c| ("dp".to_string(), c))
            .collect();
        let mut cursor = RepairCursor::new(1);
        assert_eq!(cursor.current(0), 0);
        // Rank 1 (candidate 11) is failed — the cursor lands on rank 2.
        assert_eq!(cursor.demote(0, &bin, &ledger), Some(2));
        assert_eq!(cursor.current(0), 2);
        // Nothing left.
        assert_eq!(cursor.demote(0, &bin, &ledger), None);
        assert_eq!(cursor.demote(0, &bin, &ledger), None);
    }

    #[test]
    fn report_health_transitions() {
        let mut r = ResilienceReport::new();
        assert!(r.is_clean());
        assert_eq!(r.health, Health::Clean);
        r.record("routing", "vout", "retried with perturbed order".into());
        assert_eq!(r.health, Health::Degraded);
        assert!(!r.is_clean());
        assert!(r.summary().contains("degraded"));
    }
}
