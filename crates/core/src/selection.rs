//! Primitive selection (Algorithm 1, step 1): enumerate layout
//! configurations at constant total fins, simulate every metric of each,
//! bin by aspect ratio, and keep the minimum-cost layout per bin.

use prima_layout::{generate, CellConfig, PlacementPattern, PrimitiveLayout};
use prima_primitives::{Bias, EvalError, LayoutView, MetricValues, PrimitiveDef};
use prima_spice::analysis::AnalysisError;

use crate::accounting::Phase;
use crate::cost::{cost_of, CostBreakdown};
use crate::resilience::{EvalFault, EvalLedger, FaultInjector};
use crate::{OptError, Optimizer};

/// A fully evaluated layout candidate.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The generated (and possibly tuned) layout.
    pub layout: PrimitiveLayout,
    /// Total cost (Eq. 5).
    pub cost: f64,
    /// Per-metric deviations.
    pub breakdown: Vec<CostBreakdown>,
    /// Schematic reference metric values.
    pub sch: MetricValues,
    /// Layout metric values.
    pub values: MetricValues,
}

/// Enumerates `nfin`/`nf`/`m` factorizations of `total_fins` combined with
/// every placement pattern and both dummy settings — the Fig. 5 option
/// space plus the dummy trade-off the paper calls out ("dummies reduce LOD
/// effects, but increase area and wire parasitics").
///
/// `nfin` is restricted to the given choices; `m` ranges `1..=m_max`;
/// `nf` must land in `[2, 64]`.
/// The `nfin` choices the flows explore — the fin-quantized unit-device
/// heights the cell generator supports. Shared with the schematic gate so
/// sizing legality is judged against exactly the space the flow searches.
pub const STD_NFIN_CHOICES: &[u32] = &[2, 3, 4, 6, 8, 12, 16, 24, 32];

/// The multiplier bound the flows explore (`m` in `nfin·nf·m`).
pub const STD_M_MAX: u32 = 8;

/// The standard configuration space for a primitive of `total_fins`:
/// [`enumerate_configs`] over [`STD_NFIN_CHOICES`] and [`STD_M_MAX`]. An
/// empty result means the sizing admits no legal `(nfin, nf, m)`
/// decomposition — the flow would find no candidates, so the schematic
/// gate rejects such an instance before any simulation runs.
pub fn std_config_space(total_fins: u64) -> Vec<CellConfig> {
    enumerate_configs(total_fins, STD_NFIN_CHOICES, STD_M_MAX)
}

pub fn enumerate_configs(total_fins: u64, nfin_choices: &[u32], m_max: u32) -> Vec<CellConfig> {
    let mut out = Vec::new();
    for &nfin in nfin_choices {
        if nfin == 0 || !total_fins.is_multiple_of(nfin as u64) {
            continue;
        }
        let rest = total_fins / nfin as u64;
        for m in 1..=m_max {
            if !rest.is_multiple_of(m as u64) {
                continue;
            }
            let nf = rest / m as u64;
            if !(2..=64).contains(&nf) {
                continue;
            }
            for pattern in PlacementPattern::ALL {
                for dummies in [true, false] {
                    let mut cfg = CellConfig::new(nfin, nf as u32, m, pattern);
                    cfg.dummies = dummies;
                    out.push(cfg);
                }
            }
        }
    }
    out
}

impl<'t> Optimizer<'t> {
    /// Evaluates the schematic reference metric values of a primitive.
    ///
    /// # Errors
    ///
    /// Propagates testbench failures.
    pub fn schematic_reference(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        total_fins: u64,
    ) -> Result<MetricValues, OptError> {
        self.schematic_reference_at(def, bias, total_fins, Phase::Selection)
    }

    /// [`Optimizer::schematic_reference`] with an explicit accounting
    /// phase, so corner re-evaluations charge `Phase::Corners` rather than
    /// selection.
    ///
    /// # Errors
    ///
    /// Propagates testbench failures.
    pub fn schematic_reference_at(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        total_fins: u64,
        phase: Phase,
    ) -> Result<MetricValues, OptError> {
        self.eval_values(
            def,
            LayoutView::Schematic { total_fins },
            bias,
            &Default::default(),
            phase,
        )
    }

    /// Evaluates one concrete layout against a precomputed schematic
    /// reference.
    ///
    /// # Errors
    ///
    /// Propagates testbench failures.
    pub fn evaluate_layout(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        layout: PrimitiveLayout,
        sch: &MetricValues,
        phase: Phase,
    ) -> Result<Evaluated, OptError> {
        let values = self.eval_values(
            def,
            LayoutView::Layout(&layout),
            bias,
            &Default::default(),
            phase,
        )?;
        let (cost, breakdown) = cost_of(&def.metrics, sch, &values);
        Ok(Evaluated {
            layout,
            cost,
            breakdown,
            sch: sch.clone(),
            values,
        })
    }

    /// Algorithm 1, step 1: generates and evaluates every configuration,
    /// splits candidates into `n_bins` aspect-ratio bins, and returns the
    /// minimum-cost candidate of each bin (ordered by aspect ratio).
    ///
    /// All candidate evaluations are independent and run on worker threads,
    /// mirroring the paper's parallel-simulation argument (Table V).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::NoCandidates`] for an empty config list and
    /// propagates generation/evaluation failures.
    // The `expect`s re-raise panics out of the crossbeam evaluation
    // workers; a panicked candidate has no result to salvage (the
    // fault-aware sibling `select_bins` is the one that absorbs them).
    #[allow(clippy::expect_used)]
    pub fn select(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        configs: &[CellConfig],
        n_bins: usize,
    ) -> Result<Vec<Evaluated>, OptError> {
        if configs.is_empty() || n_bins == 0 {
            return Err(OptError::NoCandidates {
                stage: "selection: empty configuration list".to_string(),
            });
        }
        let sch = self.schematic_reference(def, bias, configs[0].total_fins())?;

        // Evaluate candidates in parallel.
        let results: Vec<Result<Evaluated, OptError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = configs
                .iter()
                .map(|cfg| {
                    let sch = &sch;
                    scope.spawn(move |_| -> Result<Evaluated, OptError> {
                        let layout = generate(self.tech(), &def.spec, cfg)?;
                        self.evaluate_layout(def, bias, layout, sch, Phase::Selection)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate evaluation panicked"))
                .collect()
        })
        .expect("evaluation scope panicked");

        let mut evaluated: Vec<Evaluated> = results.into_iter().collect::<Result<_, _>>()?;
        evaluated.sort_by(|a, b| a.layout.aspect_ratio().total_cmp(&b.layout.aspect_ratio()));

        // Quantile binning over the aspect-ratio order, then min cost per bin.
        let n_bins = n_bins.min(evaluated.len());
        let mut picks: Vec<Evaluated> = Vec::with_capacity(n_bins);
        let chunk = evaluated.len().div_ceil(n_bins);
        for bin in evaluated.chunks(chunk) {
            // `chunks` never yields an empty slice, so a bin always has
            // a minimum.
            if let Some(best) = bin.iter().min_by(|a, b| a.cost.total_cmp(&b.cost)) {
                picks.push(best.clone());
            }
        }
        Ok(picks)
    }

    /// Fault-aware variant of [`Optimizer::select`] that keeps the **whole
    /// ranked bin** instead of only its winner, so the flow's repair loop
    /// can fall back to the next-best candidate of the same aspect-ratio
    /// bin when a winner later fails a sign-off gate.
    ///
    /// Candidate evaluations run on worker threads exactly as in `select`;
    /// a panicking evaluation is isolated at its join point and a failing
    /// one returns a typed error — both are recorded in `ledger` and the
    /// candidate is dropped, never aborting the run. `injector` may force
    /// either failure mode deterministically (see
    /// [`crate::resilience::FaultPlan`]).
    ///
    /// With [`crate::resilience::NoFaults`] and no organic failures, every
    /// bin's rank-0 entry is exactly the candidate `select` returns for
    /// that bin (same ordering, same tie-breaking), so a zero-fault run is
    /// bit-identical to the classic path.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::NoCandidates`] for an empty config list or when
    /// every candidate evaluation failed.
    // Child panics are folded into per-candidate results at the joins;
    // the one remaining `expect` covers the scope itself, which only
    // errors if a detached thread leaked past its join — an invariant,
    // not a recoverable state.
    #[allow(clippy::expect_used)]
    pub fn select_bins(
        &self,
        def: &PrimitiveDef,
        bias: &Bias,
        configs: &[CellConfig],
        n_bins: usize,
        injector: &dyn FaultInjector,
        ledger: &mut EvalLedger,
    ) -> Result<Vec<BinRanked>, OptError> {
        if configs.is_empty() || n_bins == 0 {
            return Err(OptError::NoCandidates {
                stage: "selection: empty configuration list".to_string(),
            });
        }
        let sch = self.schematic_reference(def, bias, configs[0].total_fins())?;

        // How one candidate went down: cancellation is a control signal that
        // aborts the whole selection, everything else is ledgered per
        // candidate so the survivors still rank.
        enum CandidateFailure {
            Cancelled(prima_cache::Cancelled),
            Failed { panicked: bool, reason: String },
        }

        // Evaluate candidates in parallel; a child panic is captured at the
        // join and folded into the per-candidate result instead of
        // propagating.
        let results: Vec<Result<Evaluated, CandidateFailure>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = configs
                .iter()
                .enumerate()
                .map(|(idx, cfg)| {
                    let sch = &sch;
                    scope.spawn(move |_| -> Result<Evaluated, OptError> {
                        match injector.eval_fault(&def.name, idx) {
                            Some(EvalFault::Panic) => {
                                panic!("injected panic: {} candidate {idx}", def.name)
                            }
                            Some(EvalFault::NonConvergence) => {
                                return Err(OptError::Eval(EvalError::Analysis(
                                    AnalysisError::NoConvergence {
                                        phase: format!(
                                            "injected fault: {} candidate {idx}",
                                            def.name
                                        ),
                                        iterations: 0,
                                    },
                                )));
                            }
                            None => {}
                        }
                        let layout = generate(self.tech(), &def.spec, cfg)?;
                        self.evaluate_layout(def, bias, layout, sch, Phase::Selection)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(ev)) => Ok(ev),
                    Ok(Err(OptError::Cancelled(c))) => Err(CandidateFailure::Cancelled(c)),
                    Ok(Err(e)) => Err(CandidateFailure::Failed {
                        panicked: false,
                        reason: e.to_string(),
                    }),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "candidate evaluation panicked".to_string());
                        Err(CandidateFailure::Failed {
                            panicked: true,
                            reason: format!("panic: {msg}"),
                        })
                    }
                })
                .collect()
        })
        .expect("evaluation scope panicked");

        let mut evaluated: Vec<(usize, Evaluated)> = Vec::with_capacity(results.len());
        for (idx, result) in results.into_iter().enumerate() {
            match result {
                Ok(ev) => evaluated.push((idx, ev)),
                // A cancelled candidate means the request (not the
                // candidate) is done: propagate without ledgering, so the
                // untried remainder is not condemned as failed and a later
                // uncancelled run starts from a clean slate.
                Err(CandidateFailure::Cancelled(c)) => return Err(OptError::Cancelled(c)),
                Err(CandidateFailure::Failed { panicked, reason }) => {
                    ledger.record(&def.name, idx, panicked, reason);
                }
            }
        }
        if evaluated.is_empty() {
            return Err(OptError::NoCandidates {
                stage: format!(
                    "selection: all {} candidate evaluations of {} failed",
                    configs.len(),
                    def.name
                ),
            });
        }

        // Identical ordering and binning to `select` over the survivors:
        // stable sort by aspect ratio, quantile chunks, then a stable sort
        // by cost inside each bin so rank 0 matches `min_by`'s
        // first-minimal tie-breaking exactly.
        evaluated.sort_by(|a, b| {
            a.1.layout
                .aspect_ratio()
                .total_cmp(&b.1.layout.aspect_ratio())
        });
        let n_bins = n_bins.min(evaluated.len());
        let chunk = evaluated.len().div_ceil(n_bins);
        let mut bins: Vec<BinRanked> = Vec::with_capacity(n_bins);
        for bin in evaluated.chunks(chunk) {
            let mut ranked: Vec<(usize, Evaluated)> = bin.to_vec();
            ranked.sort_by(|a, b| a.1.cost.total_cmp(&b.1.cost));
            bins.push(BinRanked {
                candidates: ranked.iter().map(|(idx, _)| *idx).collect(),
                ranked: ranked.into_iter().map(|(_, ev)| ev).collect(),
            });
        }
        Ok(bins)
    }
}

/// One aspect-ratio bin with every surviving candidate ranked best-first
/// (by Eq. 5 cost). `ranked[0]` is the bin winner `select` would return;
/// the remainder is the fallback order the repair loop walks.
#[derive(Debug, Clone)]
pub struct BinRanked {
    /// Original candidate indices (into the enumerated config list),
    /// parallel to `ranked`. These are the ids the [`EvalLedger`] tracks.
    pub candidates: Vec<usize>,
    /// Evaluated survivors, best (lowest-cost) first.
    pub ranked: Vec<Evaluated>,
}

impl BinRanked {
    /// `(def-relative candidate id, evaluated)` pairs in rank order for a
    /// given primitive name — the shape [`crate::resilience::RepairCursor`]
    /// consumes.
    pub fn id_pairs(&self, def: &str) -> Vec<(String, usize)> {
        self.candidates
            .iter()
            .map(|&c| (def.to_string(), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_pdk::Technology;
    use prima_primitives::Library;

    #[test]
    fn enumeration_covers_fig5_configs() {
        let configs = enumerate_configs(960, &[8, 12, 16, 24], 8);
        // Must contain the paper's Table III corners (as config triples).
        for (nfin, nf, m) in [(8u32, 20u32, 6u32), (16, 12, 5), (24, 20, 2), (12, 20, 4)] {
            assert!(
                configs
                    .iter()
                    .any(|c| c.nfin == nfin && c.nf == nf && c.m == m),
                "missing ({nfin},{nf},{m})"
            );
        }
        // Every candidate preserves total fins.
        for c in &configs {
            assert_eq!(c.total_fins(), 960);
        }
        // Patterns × dummy settings appear six-fold per shape.
        assert_eq!(configs.len() % 6, 0);
        // Both dummy settings are present.
        assert!(configs.iter().any(|c| c.dummies));
        assert!(configs.iter().any(|c| !c.dummies));
    }

    #[test]
    fn enumeration_handles_non_divisible() {
        assert!(enumerate_configs(7, &[2, 4], 4).is_empty());
        let one_fin = enumerate_configs(8, &[4], 2);
        assert!(!one_fin.is_empty());
    }

    #[test]
    fn select_returns_binned_options() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        // A smaller device keeps the test fast: 96 fins.
        let configs = enumerate_configs(96, &[4, 8], 4);
        assert!(configs.len() >= 9);
        let picks = opt.select(dp, &bias, &configs, 3).unwrap();
        assert_eq!(picks.len(), 3);
        // Ordered by aspect ratio.
        for w in picks.windows(2) {
            assert!(w[0].layout.aspect_ratio() <= w[1].layout.aspect_ratio());
        }
        // Costs are finite and the counter saw every simulation.
        for p in &picks {
            assert!(p.cost.is_finite());
        }
        let sims = opt.counter().count(crate::Phase::Selection);
        assert_eq!(sims, (configs.len() + 1) * dp.metrics.len());
    }

    #[test]
    fn select_bins_matches_select_without_faults() {
        use crate::resilience::{EvalLedger, NoFaults};
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        let configs = enumerate_configs(96, &[4, 8], 4);
        let picks = opt.select(dp, &bias, &configs, 3).unwrap();
        let mut ledger = EvalLedger::new();
        let bins = opt
            .select_bins(dp, &bias, &configs, 3, &NoFaults, &mut ledger)
            .unwrap();
        assert!(ledger.is_empty());
        assert_eq!(bins.len(), picks.len());
        for (bin, pick) in bins.iter().zip(&picks) {
            assert_eq!(bin.ranked.len(), bin.candidates.len());
            // Bit-identical winner: same config, same cost, same values.
            assert_eq!(bin.ranked[0].layout.config, pick.layout.config);
            assert_eq!(bin.ranked[0].cost.to_bits(), pick.cost.to_bits());
            // Ranked best-first.
            for w in bin.ranked.windows(2) {
                assert!(w[0].cost <= w[1].cost);
            }
        }
    }

    #[test]
    fn select_bins_survives_injected_faults() {
        use crate::resilience::{EvalLedger, FaultPlan};
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        let configs = enumerate_configs(96, &[4, 8], 4);
        let plan = FaultPlan::new(5)
            .with_eval_fail_rate(0.3)
            .with_eval_panic("dp", 0);
        let mut ledger = EvalLedger::new();
        let bins = opt
            .select_bins(dp, &bias, &configs, 3, &plan, &mut ledger)
            .unwrap();
        assert!(!ledger.is_empty(), "expected some candidates to fail");
        assert!(ledger.is_failed("dp", 0));
        assert!(ledger.panics() >= 1);
        let survivors: usize = bins.iter().map(|b| b.ranked.len()).sum();
        assert_eq!(survivors + ledger.len(), configs.len());
        // No ledger-failed candidate survived into any bin.
        for bin in &bins {
            for &c in &bin.candidates {
                assert!(!ledger.is_failed("dp", c));
            }
        }
    }

    #[test]
    fn select_bins_errors_when_everything_fails() {
        use crate::resilience::{EvalLedger, FaultPlan};
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        let configs = enumerate_configs(96, &[4, 8], 4);
        let plan = FaultPlan::new(5).with_eval_fail_rate(1.0);
        let mut ledger = EvalLedger::new();
        assert!(matches!(
            opt.select_bins(dp, &bias, &configs, 3, &plan, &mut ledger),
            Err(OptError::NoCandidates { .. })
        ));
        assert_eq!(ledger.len(), configs.len());
    }

    #[test]
    fn select_rejects_empty_inputs() {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let dp = lib.get("dp").unwrap();
        let bias = Bias::nominal(&tech, &dp.class);
        let opt = Optimizer::new(&tech);
        assert!(matches!(
            opt.select(dp, &bias, &[], 3),
            Err(OptError::NoCandidates { .. })
        ));
    }
}
