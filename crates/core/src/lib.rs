//! # prima-core
//!
//! The optimized-primitives methodology of the DATE 2021 paper, on top of
//! the `prima-*` substrates:
//!
//! * **Cost model** ([`cost`]) — Eqs. (5)–(6): weighted sum of per-metric
//!   deviations of the layout from the schematic reference.
//! * **Primitive layout optimization** ([`selection`], [`tuning`]) —
//!   Algorithm 1: enumerate `nfin`/`nf`/`m`/pattern configurations at
//!   constant total fins, simulate each metric, bin by aspect ratio, keep
//!   the per-bin winners, then add parallel wires at the tuning terminals
//!   until the cost stops improving (or its maximum-curvature point).
//! * **Primitive port optimization** ([`ports`]) — Algorithm 2: convert
//!   global-route geometry into port wiring RC, sweep the number of
//!   parallel routes, derive `[w_min, w_max]` interval constraints per net,
//!   and reconcile constraints across primitives sharing a net.
//! * **Accounting** ([`accounting`]) — simulation counting per phase, the
//!   basis of the paper's Table V runtime analysis.
//!
//! ## Example
//!
//! ```no_run
//! use prima_core::{enumerate_configs, Optimizer};
//! use prima_pdk::Technology;
//! use prima_primitives::{Bias, Library};
//!
//! let tech = Technology::finfet7();
//! let lib = Library::standard();
//! let dp = lib.get("dp").unwrap();
//! let bias = Bias::nominal(&tech, &dp.class);
//! let opt = Optimizer::new(&tech);
//! let configs = enumerate_configs(960, &[8, 12, 16, 24], 2);
//! let picks = opt.select(dp, &bias, &configs, 3).unwrap();
//! let tuned = opt.tune(dp, &bias, picks[0].layout.clone()).unwrap();
//! assert!(tuned.cost <= picks[0].cost);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod cost;
pub mod diagnostics;
pub mod ports;
pub mod resilience;
pub mod selection;
pub mod serve;
pub mod tuning;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use prima_cache::{EvalCache, EvalKey, Fingerprintable};
use prima_layout::LayoutError;
use prima_pdk::Technology;
use prima_primitives::{
    evaluate_all, external_wires_fingerprint, Bias, EvalError, ExternalWire, LayoutView,
    MetricValues, PrimitiveDef, TESTBENCH_VERSION,
};
use prima_spice::analysis::AnalysisError;
use prima_spice::{with_solve_ctrl, SolveCtrl};

pub use accounting::{Phase, SimCounter};
pub use cost::{cost_of, deviation_percent, CostBreakdown};
pub use diagnostics::{sort_dedupe, RuleKind, Severity, VerifyReport, Violation};
pub use ports::{
    clamp_to_em_floor, reconcile, route_wire, GlobalRoute, PortConstraint, ReconciledNet,
};
pub use resilience::{
    Degradation, EvalFault, EvalLedger, FaultInjector, FaultPlan, Health, LedgerEntry, NoFaults,
    RepairBudgets, RepairCursor, ResilienceReport,
};
pub use selection::{
    enumerate_configs, std_config_space, BinRanked, Evaluated, STD_M_MAX, STD_NFIN_CHOICES,
};
pub use serve::{RequestReport, ServeOutcome, ServeReport};

// The serving vocabulary: cancellation lives in `prima-cache` (the base
// crate every layer can see) and solver limits in `prima-spice`; both are
// re-exported here because core is where flows and services import from.
pub use prima_cache::{CancelReason, CancelToken, Cancelled};
pub use prima_spice::SolverLimits;

/// Errors from the optimization flow.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A primitive evaluation failed.
    Eval(EvalError),
    /// Layout generation failed.
    Layout(LayoutError),
    /// No feasible candidate survived (empty config list, empty bins…).
    NoCandidates {
        /// What stage ran dry.
        stage: String,
    },
    /// The attached [`CancelToken`] tripped (explicit cancel or deadline);
    /// the optimization was abandoned at a candidate or solver boundary.
    Cancelled(Cancelled),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Eval(e) => write!(f, "evaluation failed: {e}"),
            OptError::Layout(e) => write!(f, "layout generation failed: {e}"),
            OptError::NoCandidates { stage } => write!(f, "no candidates in {stage}"),
            OptError::Cancelled(c) => write!(f, "optimization abandoned: {c}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<EvalError> for OptError {
    fn from(e: EvalError) -> Self {
        // A cancellation surfacing through the testbench's analysis stack is
        // a control-flow signal, not an evaluation failure: unwrap it so it
        // can never be ledgered, cached, or retried as one.
        if let EvalError::Analysis(AnalysisError::Cancelled(c)) = &e {
            return OptError::Cancelled(*c);
        }
        OptError::Eval(e)
    }
}

impl From<Cancelled> for OptError {
    fn from(c: Cancelled) -> Self {
        OptError::Cancelled(c)
    }
}

impl From<LayoutError> for OptError {
    fn from(e: LayoutError) -> Self {
        OptError::Layout(e)
    }
}

/// The methodology façade: owns tech + counters, exposes the two
/// optimization steps.
#[derive(Debug)]
pub struct Optimizer<'t> {
    tech: &'t Technology,
    /// Content fingerprint of `tech`, computed once at construction and
    /// folded into every [`EvalKey`]. For a nominal deck this equals the
    /// cache's own fingerprint; a corner- or mismatch-perturbed deck gets
    /// its own address space inside the same cache file, so warm corner
    /// sweeps hit while nominal entries are never aliased.
    tech_fp: prima_cache::Fingerprint,
    counter: SimCounter,
    cache: Option<Arc<EvalCache>>,
    /// Solver limits + cancel token installed around every evaluation.
    ctrl: SolveCtrl,
    /// Maximum parallel wires explored during primitive tuning.
    pub max_tuning_wires: u32,
    /// Maximum parallel routes explored during port optimization.
    pub max_port_routes: u32,
}

impl<'t> Optimizer<'t> {
    /// Creates an optimizer over a technology with default sweep limits.
    pub fn new(tech: &'t Technology) -> Self {
        Optimizer {
            tech,
            tech_fp: tech.fingerprint(),
            counter: SimCounter::new(),
            cache: None,
            ctrl: SolveCtrl::default(),
            max_tuning_wires: 7,
            max_port_routes: 8,
        }
    }

    /// The technology in use.
    pub fn tech(&self) -> &Technology {
        self.tech
    }

    /// The simulation counter (shared across phases).
    pub fn counter(&self) -> &SimCounter {
        &self.counter
    }

    /// Replaces the simulation counter with a shared one, so several
    /// optimizers (e.g. one per PVT corner) account into a single ledger.
    pub fn set_counter(&mut self, counter: SimCounter) {
        self.counter = counter;
    }

    /// Attaches a content-addressed evaluation cache. Keys are addressed
    /// by this optimizer's own technology fingerprint, so a cache opened
    /// under the nominal deck can be shared with corner-perturbed
    /// optimizers without aliasing nominal entries.
    pub fn set_cache(&mut self, cache: Arc<EvalCache>) {
        self.cache = Some(cache);
    }

    /// The attached evaluation cache, if any.
    pub fn cache(&self) -> Option<&EvalCache> {
        self.cache.as_deref()
    }

    /// Overrides the solver iteration limits every evaluation runs under.
    pub fn set_solver_limits(&mut self, limits: SolverLimits) {
        self.ctrl.limits = limits;
    }

    /// Attaches a cancel token, checked at every candidate boundary and —
    /// via the ambient solver scope — at every Newton iteration inside the
    /// testbenches.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.ctrl.cancel = Some(token);
    }

    /// The attached cancel token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.ctrl.cancel.as_ref()
    }

    /// Runs one testbench evaluation through the cache, when one is attached.
    ///
    /// A hit substitutes the stored metric values bit-for-bit and records no
    /// simulations — the counter measures real testbench work, which is also
    /// why hits can never be charged against repair budgets (those count
    /// route/gate attempts downstream, not lookups). A miss evaluates,
    /// records the counter, and stores only the `Ok` result: failed or
    /// fault-injected evaluations propagate their error before any store, so
    /// ledgered candidates never poison the cache.
    pub(crate) fn eval_values(
        &self,
        def: &PrimitiveDef,
        view: LayoutView<'_>,
        bias: &Bias,
        ext: &HashMap<String, ExternalWire>,
        phase: Phase,
    ) -> Result<MetricValues, OptError> {
        // Candidate boundary: a cancelled request stops before touching the
        // cache or spending a single simulation.
        if let Some(token) = &self.ctrl.cancel {
            token.check()?;
        }
        let key = self
            .cache
            .as_deref()
            .filter(|c| c.is_enabled())
            .map(|_| EvalKey {
                tech: self.tech_fp,
                def: def.fingerprint(),
                view: view.fingerprint(),
                bias: bias.fingerprint(),
                wires: external_wires_fingerprint(ext),
                testbench_version: TESTBENCH_VERSION,
            });
        if let (Some(cache), Some(key)) = (self.cache.as_deref(), key.as_ref()) {
            if let Some(values) = cache.lookup(key) {
                return Ok(values);
            }
        }
        // The ambient scope makes every solver the testbench constructs on
        // *this thread* honor our limits and token; `with_solve_ctrl` must
        // therefore be re-entered on each parallel candidate worker — which
        // happens naturally because eval_values runs on the worker.
        let values = with_solve_ctrl(self.ctrl.clone(), || {
            evaluate_all(self.tech, def, view, bias, ext)
        })?;
        self.counter.record(phase, def.metrics.len());
        if let (Some(cache), Some(key)) = (self.cache.as_deref(), key) {
            cache.store(key, &values);
        }
        Ok(values)
    }
}
