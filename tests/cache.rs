//! Evaluation-cache integration tests: the determinism suite required by
//! the cache subsystem. A warm persistent cache must reproduce the cold
//! run's `FlowOutcome` bit for bit on all four benchmark circuits while
//! performing ≥90% fewer candidate evaluations; editing one primitive's
//! spec must re-evaluate only the dirtied candidates; a corrupted cache
//! file must degrade to a cold start with a `CACHE.CORRUPT` diagnostic,
//! never an error; and `EvalKey` serialization must round-trip and be
//! stable across a store save/load cycle.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use prima_cache::{CacheStats, EvalCache, EvalKey, Fingerprint, KEY_BYTES};
use prima_core::Severity;
use prima_flow::circuits::{CircuitSpec, CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{optimized_flow_with, CachePolicy, FlowOptions, FlowOutcome, VerifyPolicy};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use proptest::prelude::*;

const SEED: u64 = 11;

static TEMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique, collision-free scratch path for one test's cache file.
fn temp_path(tag: &str) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "prima-cache-it-{}-{tag}-{n}.bin",
        std::process::id()
    ))
}

fn gate_on() -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        ..FlowOptions::default()
    }
}

fn cached(path: &std::path::Path) -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        cache: CachePolicy::Persistent(path.to_path_buf()),
        ..FlowOptions::default()
    }
}

fn benchmark_circuits(
    tech: &Technology,
    lib: &Library,
) -> Vec<(&'static str, CircuitSpec, HashMap<String, Bias>)> {
    let vco = RoVco::small();
    vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(tech, lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(tech, lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(tech, lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(tech, lib).unwrap()),
    ]
}

fn total_sims(outcome: &FlowOutcome) -> usize {
    outcome.sims.values().sum()
}

/// Bit-level equality of everything physical in a `FlowOutcome`.
fn assert_bit_identical(name: &str, what: &str, a: &FlowOutcome, b: &FlowOutcome) {
    assert_eq!(
        a.area_um2.to_bits(),
        b.area_um2.to_bits(),
        "{name}: {what}: area differs"
    );
    assert_eq!(
        a.wirelength_um.to_bits(),
        b.wirelength_um.to_bits(),
        "{name}: {what}: wirelength differs"
    );
    assert_eq!(
        a.detailed, b.detailed,
        "{name}: {what}: detailed routing differs"
    );
    assert_eq!(
        a.realization.layouts, b.realization.layouts,
        "{name}: {what}: layouts differ"
    );
    assert_eq!(
        a.realization.net_wires, b.realization.net_wires,
        "{name}: {what}: net wires differ"
    );
}

/// The acceptance scenario: on every benchmark circuit, a warm persistent
/// cache reproduces both the uncached and the cold-cached outcome bit for
/// bit, while re-running ≥90% fewer candidate evaluations (measured both
/// as cache misses and as testbench simulation counts).
#[test]
fn warm_cache_is_bit_identical_and_skips_reevaluation_on_all_circuits() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    for (name, spec, biases) in benchmark_circuits(&tech, &lib) {
        let path = temp_path(name);

        let plain = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, gate_on())
            .unwrap_or_else(|e| panic!("{name}: uncached flow failed: {e}"));
        assert!(plain.cache.is_none(), "{name}: cache stats with cache off");

        let cold = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, cached(&path))
            .unwrap_or_else(|e| panic!("{name}: cold cached flow failed: {e}"));
        let warm = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, cached(&path))
            .unwrap_or_else(|e| panic!("{name}: warm cached flow failed: {e}"));
        let _ = fs::remove_file(&path);

        // Caching must be an invisible accelerator: same layouts to the bit.
        assert_bit_identical(name, "cold vs uncached", &cold, &plain);
        assert_bit_identical(name, "warm vs cold", &warm, &cold);

        let cold_stats: CacheStats = cold.cache.expect("cold stats");
        let warm_stats: CacheStats = warm.cache.expect("warm stats");
        assert!(cold_stats.misses > 0, "{name}: cold run recorded no misses");
        assert!(
            cold.cache_diagnostics.is_empty(),
            "{name}: cold run raised cache diagnostics: {:?}",
            cold.cache_diagnostics
        );
        assert!(
            warm.cache_diagnostics.is_empty(),
            "{name}: warm run raised cache diagnostics: {:?}",
            warm.cache_diagnostics
        );

        // ≥90% fewer evaluations, by both meters.
        assert!(
            warm_stats.misses * 10 <= cold_stats.misses,
            "{name}: warm misses {} vs cold {} (<90% reduction)",
            warm_stats.misses,
            cold_stats.misses
        );
        assert!(
            warm_stats.hit_rate() >= 0.9,
            "{name}: warm hit rate {:.3} below 0.9",
            warm_stats.hit_rate()
        );
        let (cold_sims, warm_sims) = (total_sims(&cold), total_sims(&warm));
        assert!(
            warm_sims * 10 <= cold_sims,
            "{name}: warm ran {warm_sims} sims vs cold {cold_sims} (<90% reduction)"
        );
    }
}

/// Incremental mode: editing one primitive's spec dirties only that
/// primitive's candidates. The warm run after the edit re-evaluates
/// something (the dirtied def) but far from everything (the untouched
/// defs keep hitting).
#[test]
fn editing_one_primitive_reevaluates_only_dirtied_candidates() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let path = temp_path("incremental");
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let cold =
        optimized_flow_with(&tech, &lib, &spec, &biases, SEED, cached(&path)).expect("cold flow");
    let cold_stats = cold.cache.expect("cold stats");

    // Edit the current-source load's spec: bump one metric weight. Content
    // addressing makes every evaluation of this def miss while the
    // amplifier def's evaluations keep hitting.
    let mut edited = Library::standard();
    let mut def = edited
        .get("csrc_pmos")
        .expect("csrc_pmos in library")
        .clone();
    assert!(!def.metrics.is_empty());
    def.metrics[0].weight *= 2.0;
    edited.upsert(def);

    let warm = optimized_flow_with(&tech, &edited, &spec, &biases, SEED, cached(&path))
        .expect("incremental flow");
    let _ = fs::remove_file(&path);
    let warm_stats = warm.cache.expect("warm stats");

    assert!(
        warm_stats.misses > 0,
        "edited primitive produced no re-evaluations"
    );
    assert!(
        warm_stats.hits > 0,
        "untouched primitives should still hit the cache"
    );
    assert!(
        warm_stats.misses < cold_stats.misses,
        "incremental run re-evaluated everything: {} vs cold {}",
        warm_stats.misses,
        cold_stats.misses
    );
}

/// Satellite: a bit-flipped cache file degrades to a (partial) cold start
/// with a `Severity::Degraded` `CACHE.CORRUPT` diagnostic — never an
/// error, never a panic — and the outcome is still bit-identical.
#[test]
fn corrupt_cache_file_degrades_to_cold_start_with_diagnostic() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let path = temp_path("corrupt");
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let cold =
        optimized_flow_with(&tech, &lib, &spec, &biases, SEED, cached(&path)).expect("cold flow");

    // Flip one bit in the record region (past the 36-byte header): the
    // per-record checksum catches it and the loader drops the tail.
    let mut bytes = fs::read(&path).expect("cache file written");
    assert!(bytes.len() > 64, "cache file suspiciously small");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("rewrite corrupted file");

    let warm = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, cached(&path))
        .expect("flow over corrupt cache must still complete");
    let _ = fs::remove_file(&path);

    assert_bit_identical("cs_amp", "warm-over-corrupt vs cold", &warm, &cold);

    let corrupt: Vec<_> = warm
        .cache_diagnostics
        .iter()
        .filter(|v| v.rule_id == "CACHE.CORRUPT")
        .collect();
    assert!(
        !corrupt.is_empty(),
        "no CACHE.CORRUPT diagnostic; got {:?}",
        warm.cache_diagnostics
    );
    assert!(
        corrupt.iter().all(|v| v.severity == Severity::Degraded),
        "cache corruption must be Degraded, not Error"
    );
    let stats = warm.cache.expect("warm stats");
    assert!(
        stats.corrupt_records > 0,
        "corrupt record counter not bumped"
    );
    // Degradations are also visible on the resilience report.
    assert!(
        warm.resilience
            .degradations
            .iter()
            .any(|d| d.stage == "cache"),
        "cache incident missing from resilience report"
    );
}

fn key_from(lanes: &[u64; 10], version: u32) -> EvalKey {
    EvalKey {
        tech: Fingerprint(lanes[0], lanes[1]),
        def: Fingerprint(lanes[2], lanes[3]),
        view: Fingerprint(lanes[4], lanes[5]),
        bias: Fingerprint(lanes[6], lanes[7]),
        wires: Fingerprint(lanes[8], lanes[9]),
        testbench_version: version,
    }
}

proptest! {
    /// `EvalKey` serialization round-trips for arbitrary fingerprints.
    #[test]
    fn eval_key_serialization_round_trips(
        lanes in proptest::collection::vec(any::<u64>(), 10),
        version in any::<u32>(),
    ) {
        let mut arr = [0u64; 10];
        arr.copy_from_slice(&lanes);
        let key = key_from(&arr, version);
        let bytes = key.to_bytes();
        prop_assert_eq!(bytes.len(), KEY_BYTES);
        prop_assert_eq!(EvalKey::from_bytes(&bytes), key);
    }

    /// Stored entries survive a save/load cycle: after reopening the
    /// store from disk, every key resolves to bit-identical metric values.
    #[test]
    fn store_entries_survive_save_and_load(
        seeds in proptest::collection::vec(any::<u64>(), 1..6),
        values in proptest::collection::vec(any::<f64>(), 1..5),
    ) {
        let path = temp_path("prop");
        let tech_fp = Fingerprint(0xfeed, 0xbeef);
        let policy = CachePolicy::Persistent(path.clone());

        let mut expected: Vec<(EvalKey, HashMap<String, f64>)> = Vec::new();
        {
            let cache = EvalCache::open(policy.clone(), tech_fp, 1);
            for (i, &seed) in seeds.iter().enumerate() {
                let lanes = [
                    seed, seed ^ 1, seed ^ 2, seed ^ 3, seed ^ 4,
                    seed ^ 5, seed ^ 6, seed ^ 7, seed ^ 8, seed ^ 9,
                ];
                let key = key_from(&lanes, i as u32);
                let vals: HashMap<String, f64> = values
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (format!("m{j}"), v + i as f64))
                    .collect();
                cache.store(key, &vals);
                expected.push((key, vals));
            }
            prop_assert!(cache.save().is_ok());
        }

        let reopened = EvalCache::open(policy, tech_fp, 1);
        prop_assert!(reopened.events().is_empty(), "clean reload raised events");
        for (key, vals) in &expected {
            let got = reopened.lookup(key);
            prop_assert!(got.is_some(), "key lost across save/load");
            let got = got.unwrap();
            prop_assert_eq!(got.len(), vals.len());
            for (name, v) in vals {
                prop_assert_eq!(got[name].to_bits(), v.to_bits());
            }
        }
        let _ = fs::remove_file(&path);
    }
}
