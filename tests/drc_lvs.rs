//! Static verification (DRC + LVS-lite) integration tests.
//!
//! Two halves: the flows must come out *clean* on the paper's four
//! benchmark circuits, and deliberately seeded violations of each class
//! must be *caught* under the expected rule id — a checker that never
//! fires is indistinguishable from one that never looks.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_flow::circuits::{CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{conventional_flow, optimized_flow};
use prima_geom::{Point, Rect};
use prima_pdk::Technology;
use prima_primitives::Library;
use prima_route::detail::{DetailedResult, TrackAssignment};
use prima_route::{GlobalRouter, RoutingProblem};
use prima_verify::drc::{self, LayerChecks, Shape, Wire};
use prima_verify::lints::LintInputs;
use prima_verify::{check_flow, FlowArtifacts};

fn env() -> (Technology, Library) {
    (Technology::finfet7(), Library::standard())
}

fn pt(x: i64, y: i64) -> Point {
    Point::new(x, y)
}

// ---------------------------------------------------------------------
// Clean flows: the verification gate runs inside every debug-build flow
// (VerifyPolicy::Auto) and must pass on all four benchmark circuits.
// ---------------------------------------------------------------------

#[test]
fn optimized_flows_verify_clean_on_all_four_circuits() {
    let (tech, lib) = env();
    let vco = RoVco::small();
    let cases = vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(&tech, &lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(&tech, &lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(&tech, &lib).unwrap()),
    ];
    for (name, spec, biases) in cases {
        let out = optimized_flow(&tech, &lib, &spec, &biases, 11).unwrap();
        let report = out.verify.expect("verify gate is on in debug builds");
        assert!(report.is_clean(), "{name}: {}", report.summary());
        assert!(report.rects_checked > 0, "{name}: no geometry was checked");
        assert!(report.nets_checked > 0, "{name}: no nets were checked");
        assert!(
            report.checks_run.iter().any(|c| c == "drc.cells")
                && report.checks_run.iter().any(|c| c == "lvs.connectivity"),
            "{name}: missing checks in {:?}",
            report.checks_run
        );
    }
}

#[test]
fn conventional_flow_verifies_clean() {
    let (tech, lib) = env();
    let out = conventional_flow(&tech, &lib, &CsAmp::spec(), 7).unwrap();
    let report = out.verify.expect("verify gate is on in debug builds");
    assert!(report.is_clean(), "{}", report.summary());
}

// ---------------------------------------------------------------------
// Seeded violations: each fixture plants exactly one defect class and the
// checker must name it correctly.
// ---------------------------------------------------------------------

/// Two rectangles closer than the layer's minimum spacing.
#[test]
fn seeded_sub_min_space_rects_are_flagged() {
    let tech = Technology::finfet7();
    let rule = tech.rules.metal(1);
    let w = rule.min_width;
    let gap = rule.min_space - 2; // two nanometres too close
    let shapes = [
        Shape {
            rect: Rect::new(pt(0, 0), pt(w, 400)),
            net: None,
        },
        Shape {
            rect: Rect::new(pt(w + gap, 0), pt(2 * w + gap, 400)),
            net: None,
        },
    ];
    let v = drc::check_layer("M1", rule, &shapes, LayerChecks::default(), "fixture");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule_id, "M1.SPACE");
    assert_eq!(v[0].found, Some(gap));
    assert_eq!(v[0].required, Some(rule.min_space));
}

/// Two different nets assigned the same detail track with overlapping
/// spans: drawn metal merges — a short, reported by both the routing DRC
/// and the connectivity diff.
#[test]
fn seeded_shorted_route_is_reported() {
    let tech = Technology::finfet7();
    let detailed = DetailedResult {
        assignments: vec![
            TrackAssignment {
                net: "a".into(),
                layer: 3,
                tracks: vec![4],
                span: (0, 600),
            },
            TrackAssignment {
                net: "b".into(),
                layer: 3,
                tracks: vec![4],
                span: (500, 1100),
            },
        ],
    };
    let mut art = FlowArtifacts::new("fixture", &tech);
    art.detailed = Some(&detailed);
    let report = check_flow(&art);
    assert!(!report.is_clean());
    assert!(report.has_rule("LVS.SHORT"), "{}", report.summary());
    assert!(report.has_rule("M3.SHORT"), "{}", report.summary());
}

/// A pin no wire reaches — what a dropped via or a mislabeled port looks
/// like after extraction.
#[test]
fn seeded_open_pin_is_reported() {
    let tech = Technology::finfet7();
    let mut problem = RoutingProblem::new();
    problem.add_net("sig", vec![pt(0, 0), pt(1200, 0)]);
    let routing = GlobalRouter::new(&tech).route(&problem).unwrap();

    let mut art = FlowArtifacts::new("fixture", &tech);
    art.routing = Some(&routing);
    art.expected_nets = vec!["sig".to_string()];
    // The third pin sits off the drawn wire entirely.
    art.pins = vec![("sig".to_string(), vec![pt(0, 0), pt(1200, 0), pt(600, 700)])];
    let report = check_flow(&art);
    assert!(report.has_rule("LVS.OPEN"), "{}", report.summary());
}

/// An expected multi-terminal net with no wiring at all.
#[test]
fn seeded_missing_net_is_reported() {
    let tech = Technology::finfet7();
    let mut problem = RoutingProblem::new();
    problem.add_net("present", vec![pt(0, 0), pt(900, 0)]);
    let routing = GlobalRouter::new(&tech).route(&problem).unwrap();

    let mut art = FlowArtifacts::new("fixture", &tech);
    art.routing = Some(&routing);
    art.expected_nets = vec!["absent".to_string()];
    art.pins = vec![("absent".to_string(), vec![pt(0, 0), pt(500, 500)])];
    let report = check_flow(&art);
    assert!(report.has_rule("LVS.MISSING"), "{}", report.summary());
}

/// A same-net layer crossing wide enough to imply a via but too narrow to
/// enclose the cut.
#[test]
fn seeded_under_enclosed_via_is_reported() {
    let tech = Technology::finfet7();
    let via = tech.rules.via(3);
    let cut = via.cut;
    // M3 is vertical, M4 horizontal; both drawn at exactly cut width, so
    // the landing is cut × cut — a via site with zero enclosure margin.
    let wires = [
        Wire {
            net: "n".into(),
            layer: 3,
            rect: Rect::new(pt(0, 0), pt(cut, 1000)),
        },
        Wire {
            net: "n".into(),
            layer: 4,
            rect: Rect::new(pt(-500, 100), pt(500, 100 + cut)),
        },
    ];
    let v = drc::check_vias(&tech, &wires);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule_id, "V3.ENC");
    assert_eq!(v[0].required, Some(cut + 2 * via.enclosure));
}

/// A flow handing the gate a negative cost weight.
#[test]
fn seeded_negative_weight_is_a_lint() {
    let tech = Technology::finfet7();
    let mut art = FlowArtifacts::new("fixture", &tech);
    art.lints = LintInputs {
        metric_weights: vec![("m1.res".to_string(), -0.5), ("m1.cap".to_string(), 1.0)],
        ..LintInputs::default()
    };
    let report = check_flow(&art);
    assert!(report.has_rule("LINT.WEIGHTS"), "{}", report.summary());
}
