//! Integration tests for the prima-gds stream-out subsystem: all four
//! benchmark circuits stream out and re-parse to a geometrically exact
//! round trip on both bundled deck families, record-level encode/decode
//! round-trips under proptest (odd-length strings, coordinate extremes,
//! `real8` units), truncated and corrupted streams come back as typed
//! errors rather than panics, seeded layer-map defects are rejected by
//! techlint with their exact `TECH.GDS.*` ids before any simulation, and
//! a layer-map edit invalidates cached evaluations while changing nothing
//! else about the deck.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use prima_cache::Fingerprintable;
use prima_flow::circuits::{CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{
    optimized_flow_with, CachePolicy, FlowError, FlowOptions, GdsPolicy, VerifyPolicy,
};
use prima_gds::record::{self, datatype, rectype};
use prima_gds::{diff, GdsElement, GdsLibrary, GdsStructure};
use prima_pdk::Technology;
use prima_primitives::Library;
use prima_techlint::{check_deck, diff_techs};

fn gds_options() -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        gds: GdsPolicy::On,
        ..FlowOptions::default()
    }
}

/// The tentpole acceptance bar: every benchmark circuit, on both deck
/// families, streams out to bytes that re-parse into a geometrically
/// identical library — zero diffs, with the hierarchy intact (every SREF
/// resolves, the top structure carries named pin labels).
#[test]
fn four_circuit_roundtrip_is_exact_on_both_decks() {
    for tech in [Technology::finfet7(), Technology::sky130ish()] {
        let lib = Library::standard();
        let vco = RoVco::small();
        let runs = [
            (CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
            (FiveTOta::spec(), FiveTOta::biases(&tech, &lib).unwrap()),
            (StrongArm::spec(), StrongArm::biases(&tech, &lib).unwrap()),
            (vco.spec(), vco.biases(&tech, &lib).unwrap()),
        ];
        for (spec, biases) in runs {
            let out = optimized_flow_with(&tech, &lib, &spec, &biases, 7, gds_options())
                .unwrap_or_else(|e| panic!("{} failed on {}: {e:?}", spec.name, tech.name));
            let art = out
                .gds
                .unwrap_or_else(|| panic!("{}: no gds artifact", spec.name));
            let back = GdsLibrary::from_bytes(&art.bytes)
                .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", spec.name));
            let diffs = diff(&art.library, &back);
            assert!(
                diffs.is_empty(),
                "{} on {}: round-trip diverged: {diffs:?}",
                spec.name,
                tech.name
            );

            let top = back
                .structure(&art.top)
                .unwrap_or_else(|| panic!("{}: top structure {} missing", spec.name, art.top));
            assert!(
                top.elements
                    .iter()
                    .any(|e| matches!(e, GdsElement::Text { .. })),
                "{}: no pin labels in top structure",
                spec.name
            );
            let mut srefs = 0usize;
            for el in &top.elements {
                if let GdsElement::Sref { structure, .. } = el {
                    srefs += 1;
                    assert!(
                        back.structure(structure).is_some(),
                        "{}: SREF to undefined structure {structure}",
                        spec.name
                    );
                }
            }
            assert_eq!(
                srefs,
                spec.instances.len(),
                "{}: one placement per instance",
                spec.name
            );
        }
    }
}

/// Timestamps are pinned to zero, so the same flow streams out to
/// byte-identical files across runs.
#[test]
fn stream_out_is_deterministic() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let a = optimized_flow_with(&tech, &lib, &spec, &biases, 7, gds_options()).unwrap();
    let b = optimized_flow_with(&tech, &lib, &spec, &biases, 7, gds_options()).unwrap();
    assert_eq!(a.gds.unwrap().bytes, b.gds.unwrap().bytes);
}

/// `GdsPolicy::Off` (the default) attaches nothing — the outcome is
/// exactly what a build without the subsystem produced.
#[test]
fn off_policy_attaches_no_artifact() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let out = optimized_flow_with(&tech, &lib, &spec, &biases, 7, FlowOptions::default()).unwrap();
    assert!(out.gds.is_none());
}

/// A serve-layer server configured with `gds: true` returns the stream as
/// an optional response artifact; the default configuration does not.
#[test]
fn serve_attaches_gds_bytes_when_configured() {
    use prima_serve::{BatchServer, ServeConfig, ServeRequest};

    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let server = BatchServer::try_new(
        tech.clone(),
        lib.clone(),
        ServeConfig {
            workers: 1,
            gds: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let ticket = server
        .submit(ServeRequest::new("tenant-a", spec.clone(), biases.clone()))
        .unwrap();
    let report = ticket.wait();
    assert!(report.has_result(), "{report:?}");
    let bytes = report.gds.expect("configured server attaches gds bytes");
    let parsed = GdsLibrary::from_bytes(&bytes).unwrap();
    assert!(parsed.structure(&format!("{}_top", parsed.name)).is_some());
    server.finish();

    let server = BatchServer::try_new(tech, lib, ServeConfig::default()).unwrap();
    let ticket = server
        .submit(ServeRequest::new("tenant-a", spec, biases))
        .unwrap();
    assert!(ticket.wait().gds.is_none(), "default server stays lean");
    server.finish();
}

fn tiny_library() -> GdsLibrary {
    GdsLibrary {
        name: "t".to_string(),
        unit_in_user: 1e-3,
        unit_in_m: 1e-9,
        structures: vec![
            GdsStructure {
                name: "cell".to_string(),
                elements: vec![GdsElement::Boundary {
                    layer: 7,
                    datatype: 0,
                    xy: vec![(0, 0), (10, 0), (10, 5), (0, 5), (0, 0)],
                }],
            },
            GdsStructure {
                name: "t_top".to_string(),
                elements: vec![
                    GdsElement::Sref {
                        structure: "cell".to_string(),
                        origin: (100, 200),
                    },
                    GdsElement::Text {
                        layer: 10,
                        texttype: 0,
                        origin: (1, 2),
                        text: "vout".to_string(),
                    },
                ],
            },
        ],
    }
}

/// Every proper prefix of a valid stream is a typed parse error — the
/// reader never panics and never fabricates a library from partial data.
#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = tiny_library().to_bytes().unwrap();
    for cut in 0..bytes.len() {
        assert!(
            GdsLibrary::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes parsed as a complete library"
        );
    }
}

/// Specific corruptions come back as the right typed error.
#[test]
fn corrupt_streams_return_typed_errors() {
    use prima_gds::GdsError;

    let bytes = tiny_library().to_bytes().unwrap();

    // Wrong leading record: the stream must open with HEADER.
    let mut b = bytes.clone();
    b[2] = rectype::BGNSTR;
    assert!(matches!(
        GdsLibrary::from_bytes(&b),
        Err(GdsError::UnexpectedRecord { offset: 0, .. })
    ));

    // Odd record length is structurally illegal.
    let mut b = bytes.clone();
    b[1] = b[1].wrapping_add(1);
    assert!(matches!(
        GdsLibrary::from_bytes(&b),
        Err(GdsError::BadRecordLength { .. } | GdsError::Truncated { .. })
    ));

    // Trailing garbage after ENDLIB is rejected, not ignored.
    let mut b = bytes.clone();
    b.extend_from_slice(&[0, 0]);
    assert!(matches!(
        GdsLibrary::from_bytes(&b),
        Err(GdsError::TrailingData { .. } | GdsError::BadRecordLength { .. })
    ));

    // Flipping any single byte never panics (errors are fine, many flips
    // still parse — e.g. a coordinate change).
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0xFF;
        let _ = GdsLibrary::from_bytes(&b);
    }
}

/// The exact i32 corner values encode and decode losslessly in an XY
/// record — the coordinate extremes the emitter's range check admits.
#[test]
fn xy_corner_values_roundtrip() {
    let pts = vec![
        (i32::MIN, i32::MIN),
        (i32::MAX, i32::MIN),
        (i32::MAX, i32::MAX),
        (i32::MIN, i32::MAX),
        (i32::MIN, i32::MIN),
    ];
    let flat: Vec<i32> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
    let mut buf = Vec::new();
    record::push_i32_record(&mut buf, rectype::XY, &flat).unwrap();
    let mut pos = 0;
    let rec = record::read_record(&buf, &mut pos).unwrap();
    assert_eq!(rec.xy_pairs().unwrap(), pts);
    assert_eq!(pos, buf.len());
}

/// Seeded layer-map defects: techlint rejects each with its exact
/// `TECH.GDS.*` id, and the flow's zeroth gate refuses the deck before a
/// single layout is generated or simulation runs.
fn assert_gds_defect_caught(rule_id: &str, break_deck: impl Fn(&mut Technology)) {
    let lib = Library::standard();
    let mut tech = Technology::sky130ish();
    break_deck(&mut tech);

    let report = check_deck(&tech, &lib);
    assert!(!report.is_passing(), "{rule_id}: deck unexpectedly clean");
    assert!(
        report.has_rule(rule_id),
        "{rule_id} not reported; got {:?}",
        report
            .violations
            .iter()
            .map(|v| v.rule_id.as_str())
            .collect::<Vec<_>>()
    );

    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&Technology::sky130ish(), &lib).unwrap();
    match optimized_flow_with(&tech, &lib, &spec, &biases, 7, gds_options()) {
        Err(FlowError::Verify { first, .. }) => {
            assert!(
                first.contains(rule_id),
                "flow error cites {first:?}, expected {rule_id}"
            );
        }
        Err(other) => panic!("{rule_id}: expected Verify error, got {other:?}"),
        Ok(_) => panic!("{rule_id}: flow completed on a broken deck"),
    }
}

#[test]
fn uncovered_drawn_layer_is_rejected() {
    assert_gds_defect_caught("TECH.GDS.COVERAGE", |tech| {
        tech.gds.entries.retain(|e| e.name != "poly");
    });
}

#[test]
fn colliding_layer_numbers_are_rejected() {
    assert_gds_defect_caught("TECH.GDS.DUP", |tech| {
        let (l, d) = (tech.gds.entries[0].layer, tech.gds.entries[0].datatype);
        tech.gds.entries[2].layer = l;
        tech.gds.entries[2].datatype = d;
    });
}

#[test]
fn nonpositive_units_are_rejected() {
    assert_gds_defect_caught("TECH.GDS.UNITS", |tech| {
        tech.gds.unit_in_m = -1e-9;
    });
}

/// The small fix: the layer map participates in the deck fingerprint, so
/// editing it invalidates cached evaluations — while changing nothing
/// else about the deck (layouts stay legal, drift names only `gds`).
#[test]
fn layer_map_edit_invalidates_cached_evaluations() {
    let base = Technology::finfet7();
    let mut edited = base.clone();
    edited.gds.entries[0].layer = 41;

    assert_ne!(base.fingerprint(), edited.fingerprint());
    let drift = diff_techs(&base, &edited);
    assert!(drift.cache_invalidating());
    assert!(drift.layout_compatible(), "{:#?}", drift.entries);
    assert_eq!(
        drift
            .entries
            .iter()
            .map(|e| e.field.as_str())
            .collect::<Vec<_>>(),
        vec!["gds"],
        "a layer-map edit must change nothing but the map"
    );

    // Cache-level proof: a warm run on the base deck replays stored
    // results, while the same persistent store under the edited deck gives
    // exactly a cold start (the only hits are within-run self-hits, the
    // same count a fresh store yields — `EvalKey` embeds the deck
    // fingerprint, so every persisted entry misses).
    let lib = Library::standard();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&base, &lib).unwrap();
    let path = std::env::temp_dir().join(format!("prima-gds-fp-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let opts = |p: &std::path::Path| FlowOptions {
        cache: CachePolicy::Persistent(p.to_path_buf()),
        ..FlowOptions::default()
    };
    let cold = optimized_flow_with(&base, &lib, &spec, &biases, 7, opts(&path)).unwrap();
    let cold = cold.cache.unwrap();
    assert!(cold.misses > 0);
    let warm = optimized_flow_with(&base, &lib, &spec, &biases, 7, opts(&path)).unwrap();
    let warm = warm.cache.unwrap();
    assert!(
        warm.hits > cold.hits,
        "same-deck warm run must replay persisted results ({warm:?} vs {cold:?})"
    );
    let invalidated = optimized_flow_with(&edited, &lib, &spec, &biases, 7, opts(&path)).unwrap();
    let stats = invalidated.cache.unwrap();
    assert_eq!(
        (stats.hits, stats.misses),
        (cold.hits, cold.misses),
        "layer-map edit must reduce the warm store to a cold start"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `real8` is lossless over the unit-size range: the format carries a
    /// 56-bit mantissa (f64 has 53) and normalization only scales by
    /// powers of two, so decode(encode(v)) is bit-exact.
    #[test]
    fn real8_roundtrips_bit_exactly(m in -1.0e30f64..1.0e30f64) {
        let encoded = record::encode_real8(m).unwrap();
        prop_assert_eq!(record::decode_real8(&encoded).to_bits(), m.to_bits());
    }

    /// String records round-trip through the NUL-padding of odd lengths
    /// (printable-ASCII payloads of every length 1..=21, odd included).
    #[test]
    fn string_records_roundtrip(
        chars in proptest::collection::vec(32u8..127u8, 1..22)
    ) {
        let s = String::from_utf8(chars).unwrap();
        let mut buf = Vec::new();
        record::push_str_record(&mut buf, rectype::STRING, &s).unwrap();
        prop_assert_eq!(buf.len() % 2, 0, "records are always even-length");
        let mut pos = 0;
        let rec = record::read_record(&buf, &mut pos).unwrap();
        prop_assert_eq!(rec.rectype, rectype::STRING);
        prop_assert_eq!(rec.datatype, datatype::ASCII);
        prop_assert_eq!(rec.ascii().unwrap(), s);
        prop_assert_eq!(pos, buf.len());
    }

    /// XY records round-trip across the full i32 coordinate range.
    #[test]
    fn xy_records_roundtrip_at_extremes(
        pts in proptest::collection::vec(
            (i32::MIN..=i32::MAX, i32::MIN..=i32::MAX),
            1..12,
        )
    ) {
        let flat: Vec<i32> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        let mut buf = Vec::new();
        record::push_i32_record(&mut buf, rectype::XY, &flat).unwrap();
        let mut pos = 0;
        let rec = record::read_record(&buf, &mut pos).unwrap();
        prop_assert_eq!(rec.xy_pairs().unwrap(), pts);
    }

    /// Whole-library round trip with extreme (but ring-closed) boundary
    /// coordinates stays element-exact.
    #[test]
    fn extreme_boundaries_roundtrip(
        x0 in i32::MIN..=i32::MAX, y0 in i32::MIN..=i32::MAX,
        layer in 0i16..256, dt in 0i16..4,
    ) {
        let (x1, y1) = (x0 ^ 0x55aa, y0 ^ 0x2a55);
        let lib = GdsLibrary {
            name: "p".to_string(),
            unit_in_user: 1e-3,
            unit_in_m: 1e-9,
            structures: vec![GdsStructure {
                name: "s".to_string(),
                elements: vec![GdsElement::Boundary {
                    layer,
                    datatype: dt,
                    xy: vec![(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)],
                }],
            }],
        };
        let bytes = lib.to_bytes().unwrap();
        let back = GdsLibrary::from_bytes(&bytes).unwrap();
        prop_assert!(diff(&lib, &back).is_empty());
    }
}
