//! Electrical rule check (prima-erc) integration tests.
//!
//! Mirrors the structure of the geometric gate's tests (`drc_lvs.rs`):
//! the flows must come out *clean* on the paper's four benchmark circuits
//! — the Algorithm 2 clamp reconciles every routed net at or above its
//! EM-safe width, so a clean report is a property of the flow, not luck —
//! and deliberately seeded violations of every electrical rule class must
//! be *caught* under the expected rule id with the expected magnitudes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use prima_erc::{
    check_erc, CentroidGroup, ErcArtifacts, NetCurrent, Severity, SupplyTap, SymmetryPair,
};
use prima_flow::circuits::{CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{conventional_flow, optimized_flow};
use prima_geom::{Point, Rect};
use prima_pdk::Technology;
use prima_primitives::Library;
use prima_route::{NetRoute, RoutingResult, Segment};

fn env() -> (Technology, Library) {
    (Technology::finfet7(), Library::standard())
}

/// A single-segment route on one layer, for seeding EM fixtures.
fn one_segment_route(net: &str, layer: usize) -> RoutingResult {
    RoutingResult::from_routes(vec![NetRoute {
        net: net.to_string(),
        segments: vec![Segment {
            layer,
            from: Point::new(0, 0),
            to: Point::new(0, 2_000),
        }],
        via_count: 2,
    }])
}

// ---------------------------------------------------------------------
// Clean flows: the ERC gate runs inside every debug-build flow right
// after the geometric gate and must pass on all four benchmark circuits.
// ---------------------------------------------------------------------

#[test]
fn optimized_flows_pass_erc_on_all_four_circuits() {
    let (tech, lib) = env();
    let vco = RoVco::small();
    let cases = vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(&tech, &lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(&tech, &lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(&tech, &lib).unwrap()),
    ];
    for (name, spec, biases) in cases {
        let out = optimized_flow(&tech, &lib, &spec, &biases, 11).unwrap();
        let report = out.erc.expect("erc gate is on in debug builds");
        assert!(report.is_clean(), "{name}: {}", report.summary());
        assert!(report.nets_checked > 0, "{name}: no nets were checked");
        for check in ["erc.em", "erc.ir", "erc.symmetry", "erc.connect"] {
            assert!(
                report.checks_run.iter().any(|c| c == check),
                "{name}: {check} missing from {:?}",
                report.checks_run
            );
        }
    }
}

#[test]
fn conventional_flow_passes_erc() {
    let (tech, lib) = env();
    let out = conventional_flow(&tech, &lib, &CsAmp::spec(), 7).unwrap();
    let report = out.erc.expect("erc gate is on in debug builds");
    assert!(report.is_clean(), "{}", report.summary());
    // The baseline has no operating-point data, so the EM pass cannot run
    // — but the hygiene checks still do.
    assert!(report.checks_run.iter().any(|c| c == "erc.connect"));
}

/// Algorithm 2 closure: the OTA tail net `n3` carries the full 700 µA
/// tail current, and the clamp must have widened it to at least the
/// EM-safe route count of whatever layer each of its spans landed on.
#[test]
fn em_clamp_widens_the_ota_tail_net() {
    let (tech, lib) = env();
    let spec = FiveTOta::spec();
    let biases = FiveTOta::biases(&tech, &lib).unwrap();
    let out = optimized_flow(&tech, &lib, &spec, &biases, 11).unwrap();
    let spans: Vec<_> = out
        .detailed
        .assignments
        .iter()
        .filter(|a| a.net == "n3")
        .collect();
    assert!(!spans.is_empty(), "tail net n3 was not detail-routed");
    for a in spans {
        let needed = tech.em_required_routes(a.layer, 700e-6);
        assert!(
            a.tracks.len() as u32 >= needed,
            "n3 span on M{} uses {} track(s); 700 µA needs {}",
            a.layer,
            a.tracks.len(),
            needed
        );
    }
}

// ---------------------------------------------------------------------
// Seeded violations: each fixture plants exactly one electrical defect
// and the checker must name it — with the right magnitudes — through the
// same `check_erc` entry point the flows call.
// ---------------------------------------------------------------------

/// A 200 µA net routed as a single M1 wire, whose EM limit is
/// 8 mA/µm × 18 nm = 144 µA.
#[test]
fn seeded_overloaded_wire_trips_em_width() {
    let tech = Technology::finfet7();
    let routing = one_segment_route("sig", 1);
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.routing = Some(&routing);
    art.net_currents = vec![NetCurrent {
        net: "sig".into(),
        worst_a: 200e-6,
        taps: Vec::new(),
    }];
    let report = check_erc(&art);
    // The tapless fixture also gets a degraded EM.FALLBACK note (current
    // propagation has no budgets to split); only the width error gates.
    assert_eq!(report.error_count(), 1, "{}", report.summary());
    assert!(report.has_rule("EM.FALLBACK"), "{}", report.summary());
    let v = report
        .violations
        .iter()
        .find(|v| v.severity == Severity::Error)
        .unwrap();
    assert_eq!(v.rule_id, "EM.WIDTH");
    assert_eq!(v.layer.as_deref(), Some("M1"));
    assert_eq!(v.found, Some(200));
    assert_eq!(v.required, Some(144));
}

/// A 300 µA net routed on M6: the wire itself is fine (360 µA limit) but
/// the access stack funnels the whole current through one V1 cut rated
/// for 250 µA. Only the via rule may fire.
#[test]
fn seeded_overloaded_via_stack_trips_em_via() {
    let tech = Technology::finfet7();
    let routing = one_segment_route("sig", 6);
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.routing = Some(&routing);
    art.net_currents = vec![NetCurrent {
        net: "sig".into(),
        worst_a: 300e-6,
        taps: Vec::new(),
    }];
    let report = check_erc(&art);
    assert!(!report.has_rule("EM.WIDTH"), "{}", report.summary());
    assert_eq!(report.error_count(), 1, "{}", report.summary());
    let v = report
        .violations
        .iter()
        .find(|v| v.severity == Severity::Error)
        .unwrap();
    assert_eq!(v.rule_id, "EM.VIA");
    assert_eq!(v.layer.as_deref(), Some("V1"));
    assert_eq!(v.found, Some(300));
    assert_eq!(v.required, Some(250));
}

/// Two more parallel routes make the same 300 µA via stack legal: the cut
/// count scales with the route count.
#[test]
fn widened_net_clears_the_same_via_stack() {
    let tech = Technology::finfet7();
    let routing = one_segment_route("sig", 6);
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.routing = Some(&routing);
    art.net_widths = HashMap::from([("sig".to_string(), 2u32)]);
    art.net_currents = vec![NetCurrent {
        net: "sig".into(),
        worst_a: 300e-6,
        taps: Vec::new(),
    }];
    // Passing (no errors); the tapless fixture still carries the degraded
    // EM.FALLBACK note.
    let report = check_erc(&art);
    assert!(report.is_passing(), "{}", report.summary());
    assert_eq!(report.error_count(), 0, "{}", report.summary());
}

/// A supply tap whose grid feed (39 mV) plus internal access drop
/// (300 µA × 20 Ω = 6 mV) blows the 40 mV budget (5 % of 0.8 V).
#[test]
fn seeded_supply_drop_trips_ir_budget() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.supply = vec![SupplyTap {
        instance: "m7".into(),
        net: "vdd".into(),
        current_a: 300e-6,
        grid_drop_v: 39e-3,
        internal_r_ohm: 20.0,
    }];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "IR.BUDGET");
    assert_eq!(v.scope.as_deref(), Some("m7"));
    assert_eq!(v.found, Some(45_000));
    assert_eq!(v.required, Some(40_000));
}

/// A declared symmetric pair placed 300 nm apart in y — far outside the
/// 40 nm matching tolerance.
#[test]
fn seeded_offset_pair_trips_sym_mirror() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.outlines = vec![
        (
            "ma".to_string(),
            Rect::from_size(Point::new(0, 0), 1200, 800),
        ),
        (
            "mb".to_string(),
            Rect::from_size(Point::new(1400, 300), 1200, 800),
        ),
    ];
    art.pairs = vec![SymmetryPair {
        a: "ma".into(),
        b: "mb".into(),
    }];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "SYM.MIRROR");
    assert_eq!(v.scope.as_deref(), Some("ma/mb"));
    assert_eq!(v.found, Some(300));
    assert_eq!(v.required, Some(40));
}

/// A common-centroid cell whose device centroids sit 500 nm apart.
#[test]
fn seeded_split_centroids_trip_sym_centroid() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.centroid_groups = vec![CentroidGroup {
        instance: "dp0".into(),
        centroids: vec![("MA".into(), 400.0), ("MB".into(), 900.0)],
    }];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "SYM.CENTROID");
    assert_eq!(v.scope.as_deref(), Some("dp0"));
    assert_eq!(v.found, Some(500));
    assert_eq!(v.required, Some(40));
}

fn tap(instance: &str, port: &str, net: &str, gate: bool) -> prima_erc::PortTap {
    prima_erc::PortTap {
        instance: instance.into(),
        port: port.into(),
        net: net.into(),
        is_gate_only: gate,
    }
}

/// A net reaching only transistor gates, not declared an external input:
/// nothing can ever set its voltage.
#[test]
fn seeded_gate_only_net_trips_erc_float() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.port_taps = vec![
        tap("m1", "vb", "mid", true),
        tap("m2", "vb", "mid", true),
        tap("m1", "out", "vout", false),
    ];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "ERC.FLOAT");
    assert_eq!(v.scope.as_deref(), Some("mid"));

    // Declaring it externally driven (a bias pin) silences the rule.
    art.external_nets = vec!["mid".to_string()];
    assert!(check_erc(&art).is_clean());
}

/// A primitive declaring a port the instance never binds to a net.
#[test]
fn seeded_unbound_port_trips_erc_dangle() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.port_taps = vec![tap("m1", "in", "a", false)];
    art.declared_ports = vec![("m1".to_string(), vec!["in".into(), "out".into()])];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "ERC.DANGLE");
    assert_eq!(v.scope.as_deref(), Some("m1"));
    assert!(v.message.contains("m1.out"), "{}", v.message);
}

/// A cell placed 9 µm from the only well-tap row, against a 5 µm limit.
#[test]
fn seeded_remote_cell_trips_erc_tap() {
    let tech = Technology::finfet7();
    let mut art = ErcArtifacts::new("fixture", &tech);
    art.tap_rows = vec![0];
    art.outlines = vec![(
        "far".to_string(),
        Rect::from_size(Point::new(0, 9_000), 1_000, 1_000),
    )];
    let report = check_erc(&art);
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    let v = &report.violations[0];
    assert_eq!(v.rule_id, "ERC.TAP");
    assert_eq!(v.scope.as_deref(), Some("far"));
    assert_eq!(v.found, Some(9_000));
    assert_eq!(v.required, Some(5_000));
}
