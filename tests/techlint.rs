//! Integration tests for the prima-techlint zeroth gate: every bundled
//! deck lints clean through the flow preflight, seeded deck defects are
//! rejected with their exact `TECH.*`/`LIB.*` rule ids before a single
//! simulation runs, lint results are stable under the order-free parts of
//! deck construction, and — the portability claim — all four benchmark
//! circuits complete the optimized flow on the SKY130-flavored deck with
//! every gate (techlint → schem → verify → erc) enforced and clean.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use prima_flow::circuits::{CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{optimized_flow_with, techlint_preflight, FlowError, FlowOptions, VerifyPolicy};
use prima_pdk::Technology;
use prima_primitives::Library;
use prima_techlint::{check_deck, diff_techs};

/// All bundled decks pass the full preflight (deck self-consistency and
/// library feasibility) with both check families on record.
#[test]
fn bundled_decks_are_clean_through_preflight() {
    let lib = Library::standard();
    for tech in [
        Technology::finfet7(),
        Technology::bulk16(),
        Technology::sky130ish(),
    ] {
        let report = techlint_preflight(&tech, &lib);
        assert!(
            report.is_passing(),
            "{}: {:#?}",
            tech.name,
            report.violations
        );
        assert_eq!(report.checks_run, vec!["techlint.deck", "techlint.library"]);
    }
}

/// Applies `break_deck` to a clean deck and asserts the analyzer rejects
/// it with exactly `rule_id`, and that the optimized flow refuses the deck
/// in preflight — before the optimizer is constructed, so zero layouts are
/// generated and zero simulations run.
fn assert_defect_caught(rule_id: &str, break_deck: impl Fn(&mut Technology)) {
    let lib = Library::standard();
    let mut tech = Technology::sky130ish();
    break_deck(&mut tech);

    let report = check_deck(&tech, &lib);
    assert!(!report.is_passing(), "{rule_id}: deck unexpectedly clean");
    assert!(
        report.has_rule(rule_id),
        "{rule_id} not reported; got {:?}",
        report
            .violations
            .iter()
            .map(|v| v.rule_id.as_str())
            .collect::<Vec<_>>()
    );

    // The flow-level gate carries the same id out as a typed error.
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&Technology::sky130ish(), &lib).unwrap();
    let options = FlowOptions {
        verify: VerifyPolicy::On,
        ..FlowOptions::default()
    };
    match optimized_flow_with(&tech, &lib, &spec, &biases, 7, options) {
        Err(FlowError::Verify { first, .. }) => {
            assert!(
                first.contains(rule_id),
                "flow error cites {first:?}, expected {rule_id}"
            );
        }
        Err(other) => panic!("{rule_id}: expected Verify error, got {other:?}"),
        Ok(_) => panic!("{rule_id}: flow completed on a broken deck"),
    }
}

#[test]
fn truncated_em_via_table_is_rejected() {
    assert_defect_caught("TECH.EM.VIA", |tech| {
        tech.electrical.em_ma_per_cut.pop();
    });
}

#[test]
fn truncated_via_stack_is_rejected() {
    assert_defect_caught("TECH.VIA.COUNT", |tech| {
        tech.via_r.pop();
        tech.electrical.em_ma_per_cut.pop();
    });
}

#[test]
fn oversized_via_enclosure_is_rejected() {
    assert_defect_caught("TECH.VIA.FIT", |tech| {
        tech.rules.vias[1].enclosure = 500;
    });
}

#[test]
fn metal_width_above_pitch_is_rejected() {
    assert_defect_caught("TECH.METAL.WIDTH", |tech| {
        tech.metals[2].min_width = tech.metals[2].pitch * 2;
    });
}

#[test]
fn off_grid_deck_is_rejected() {
    assert_defect_caught("TECH.GRID.DIV", |tech| {
        tech.rules.grid_nm = 7;
    });
}

#[test]
fn renamed_rule_row_is_rejected() {
    assert_defect_caught("TECH.RULES.NAME", |tech| {
        tech.rules.metal[1].layer = "MET1".into();
    });
}

#[test]
fn starved_metal_space_is_rejected_as_library_infeasible() {
    // A legal-looking deck whose bottom-layer spacing leaves no room
    // between adjacent contact stubs: every deck section stays
    // self-consistent (pitch is widened to keep width + space on-track),
    // but no primitive can ever render on it — a LIB.* finding, proven
    // analytically without rendering a single cell.
    assert_defect_caught("LIB.FIT", |tech| {
        tech.rules.metal[0].min_space = 300;
        tech.metals[0].pitch = 480;
    });
}

/// Cross-deck drift: the two production decks differ in load-bearing
/// fields, and the classification separates cache-invalidating drift from
/// layout-compatible drift.
#[test]
fn drift_between_bundled_decks_is_cache_invalidating() {
    let drift = diff_techs(&Technology::finfet7(), &Technology::sky130ish());
    assert!(!drift.is_identical());
    assert!(drift.fingerprint_changed);
    assert!(drift.cache_invalidating());

    // An electrical-only retune keeps layouts valid — re-simulate, don't
    // regenerate — but the fingerprint feeds every field, so caches keyed
    // on it still invalidate.
    let mut retuned = Technology::sky130ish();
    retuned.electrical.em_ma_per_um *= 1.25;
    let drift = diff_techs(&Technology::sky130ish(), &retuned);
    assert!(drift.fingerprint_changed);
    assert!(drift.cache_invalidating());
    assert!(drift.layout_compatible());
}

/// The acceptance bar for the second technology: all four benchmark
/// circuits complete the optimized flow on the SKY130-flavored deck with
/// every static gate enforced (`VerifyPolicy::On`) and every report clean.
#[test]
fn all_four_circuits_complete_optimized_flow_on_sky130ish() {
    let tech = Technology::sky130ish();
    let lib = Library::standard();
    let options = FlowOptions {
        verify: VerifyPolicy::On,
        ..FlowOptions::default()
    };
    let vco = RoVco::small();
    let runs = [
        (CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
        (FiveTOta::spec(), FiveTOta::biases(&tech, &lib).unwrap()),
        (StrongArm::spec(), StrongArm::biases(&tech, &lib).unwrap()),
        (vco.spec(), vco.biases(&tech, &lib).unwrap()),
    ];
    for (spec, biases) in runs {
        let outcome = optimized_flow_with(&tech, &lib, &spec, &biases, 13, options.clone())
            .unwrap_or_else(|e| panic!("{} failed on sky130ish: {e:?}", spec.name));
        for (gate, report) in [
            ("techlint", &outcome.techlint),
            ("schem", &outcome.schem),
            ("verify", &outcome.verify),
            ("erc", &outcome.erc),
        ] {
            let report = report
                .as_ref()
                .unwrap_or_else(|| panic!("{}: {gate} gate did not run", spec.name));
            assert!(
                report.is_passing(),
                "{}: {gate} gate failed: {:#?}",
                spec.name,
                report.violations
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lint results are invariant under deck construction order: the
    /// FEOL rule rows and placement-grid rows are keyed by layer name, so
    /// any permutation of those sections must produce the identical
    /// report — same verdict, same violations in the same canonical
    /// order. Checked on both a clean deck and a seeded off-grid deck.
    #[test]
    fn lint_is_invariant_under_section_construction_order(
        seed in any::<u64>(),
        off_grid in any::<bool>(),
    ) {
        use rand::{Rng, SeedableRng};
        fn shuffle<T>(items: &mut [T], rng: &mut rand::StdRng) {
            for i in (1..items.len()).rev() {
                let j = rng.gen_range(0..=i);
                items.swap(i, j);
            }
        }

        let lib = Library::standard();
        let mut base = Technology::sky130ish();
        if off_grid {
            base.rules.grid_nm = 7;
        }
        let want = check_deck(&base, &lib);

        let mut rng = rand::StdRng::seed_from_u64(seed);
        let mut shuffled = base.clone();
        shuffle(&mut shuffled.rules.feol, &mut rng);
        shuffle(&mut shuffled.rules.grids, &mut rng);
        let got = check_deck(&shuffled, &lib);

        prop_assert_eq!(want.is_passing(), got.is_passing());
        prop_assert_eq!(want.violations, got.violations);
    }

    /// Any deck whose wire resistance rises somewhere up the stack — a
    /// physically backwards table, however slight — trips the
    /// monotonicity lint.
    #[test]
    fn perturbed_monotonic_deck_trips_mono_lint(
        layer in 1usize..6,
        factor in 1.01f64..50.0,
    ) {
        let mut tech = Technology::finfet7();
        tech.metals[layer].r_ohm_per_um = tech.metals[layer - 1].r_ohm_per_um * factor;
        let report = check_deck(&tech, &Library::standard());
        prop_assert!(report.has_rule("TECH.MONO.R"));
        prop_assert!(!report.is_passing());
    }
}
