//! Property-based invariants across the workspace (proptest).

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use prima_core::{cost_of, deviation_percent, reconcile, PortConstraint};
use prima_geom::{Point, Rect};
use prima_layout::{generate, CellConfig, DeviceSpec, PlacementPattern, PrimitiveSpec};
use prima_pdk::Technology;
use prima_place::{Block, Net, PlacementProblem, Placer};
use prima_primitives::{Metric, MetricKind};
use prima_route::{GlobalRouter, RoutingProblem};
use prima_spice::analysis::dc::DcSolver;
use prima_spice::netlist::Circuit;
use prima_spice::num::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solves any random diagonally dominant system to high residual
    /// accuracy.
    #[test]
    fn lu_solves_diagonally_dominant(
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Matrix::<f64>::zero(n);
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    m[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            m[(i, i)] = row_sum + rng.gen_range(0.5..2.0);
            b[i] = rng.gen_range(-10.0..10.0);
        }
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, yi) in b.iter().zip(back.iter()) {
            prop_assert!((bi - yi).abs() < 1e-8, "residual {}", (bi - yi).abs());
        }
    }

    /// A resistive divider chain solves to voltages that are monotone along
    /// the chain and within the source range.
    #[test]
    fn divider_chain_is_monotone(
        rs in prop::collection::vec(1.0f64..1e6, 2..8),
        v in 0.1f64..10.0,
    ) {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.vsource("V1", top, Circuit::GROUND, v);
        let mut prev = top;
        let mut nodes = vec![top];
        for (i, r) in rs.iter().enumerate() {
            let n = c.node(&format!("n{i}"));
            c.resistor(&format!("R{i}"), prev, n, *r).unwrap();
            nodes.push(n);
            prev = n;
        }
        c.resistor("Rend", prev, Circuit::GROUND, 1e3).unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let mut last = v + 1e-9;
        for n in nodes {
            let vn = op.voltage(n);
            prop_assert!(vn <= last + 1e-9, "chain voltage rose: {vn} after {last}");
            prop_assert!(vn >= -1e-9);
            last = vn;
        }
    }

    /// Eq. 6 invariants: zero at parity, scale-invariant, symmetric.
    #[test]
    fn deviation_properties(x in 1e-12f64..1e12, rel in -0.9f64..0.9) {
        let y = x * (1.0 + rel);
        prop_assert!(deviation_percent(x, x, None) == 0.0);
        let d1 = deviation_percent(x, y, None);
        let d2 = deviation_percent(2.0 * x, 2.0 * y, None);
        prop_assert!((d1 - d2).abs() < 1e-6 * d1.max(1.0));
        prop_assert!((d1 - 100.0 * rel.abs()).abs() < 1e-6 * d1.max(1.0));
    }

    /// The cost function is non-negative and additive in weights.
    #[test]
    fn cost_is_nonnegative(
        vals in prop::collection::vec((1e-6f64..1e6, 0.5f64..2.0), 1..5),
    ) {
        let mut metrics = Vec::new();
        let mut sch = std::collections::HashMap::new();
        let mut lay = std::collections::HashMap::new();
        for (i, (v, ratio)) in vals.iter().enumerate() {
            let name = format!("m{i}");
            metrics.push(Metric::new(&name, MetricKind::Gm, 0.5));
            sch.insert(name.clone(), *v);
            lay.insert(name, v * ratio);
        }
        let (cost, breakdown) = cost_of(&metrics, &sch, &lay);
        prop_assert!(cost >= 0.0);
        let sum: f64 = breakdown.iter().map(|b| b.weight * b.deviation_pct).sum();
        prop_assert!((cost - sum).abs() < 1e-9);
    }

    /// Reconciliation always returns a width no smaller than 1 and, for
    /// overlapping intervals, exactly the max lower bound.
    #[test]
    fn reconcile_feasibility(
        wmins in prop::collection::vec(1u32..6, 1..4),
        has_cap in any::<bool>(),
    ) {
        let constraints: Vec<PortConstraint> = wmins
            .iter()
            .map(|&w| PortConstraint {
                net: "n".to_string(),
                w_min: w,
                w_max: if has_cap { Some(w + 2) } else { None },
                costs: (0..8).map(|k| (8 - k) as f64).collect(),
            })
            .collect();
        let r = reconcile(&constraints);
        prop_assert!(r.w >= 1);
        let lo = *wmins.iter().max().unwrap();
        if has_cap {
            let hi = wmins.iter().map(|w| w + 2).min().unwrap();
            if lo <= hi {
                prop_assert_eq!(r.w, lo);
            } else {
                prop_assert!(r.w >= hi.min(lo) && r.w <= lo.max(hi));
            }
        } else {
            prop_assert_eq!(r.w, lo);
        }
    }

    /// Cell generation conserves total fins in device widths and keeps the
    /// tuning R monotone non-increasing in the wire count.
    #[test]
    fn layout_generation_invariants(
        nfin in 1u32..24,
        nf in 2u32..20,
        m in 1u32..5,
        pattern_ix in 0usize..3,
    ) {
        let tech = Technology::finfet7();
        let spec = PrimitiveSpec::new(
            "dp",
            vec![
                DeviceSpec::new("MA", prima_spice::devices::FetPolarity::Nmos, "da", "ga", "s"),
                DeviceSpec::new("MB", prima_spice::devices::FetPolarity::Nmos, "db", "gb", "s"),
            ],
        );
        let cfg = CellConfig::new(nfin, nf, m, PlacementPattern::ALL[pattern_ix]);
        let mut layout = generate(&tech, &spec, &cfg).unwrap();
        let expect_w = tech.fin.weff_m(nfin * nf * m);
        for d in &layout.devices {
            prop_assert!((d.w_m - expect_w).abs() < 1e-12);
            prop_assert!(d.mobility_scale > 0.4 && d.mobility_scale < 1.6);
        }
        let mut last_r = f64::INFINITY;
        let mut last_c = 0.0;
        for k in 1..=6 {
            layout.set_parallel_wires("s", k).unwrap();
            let p = layout.net_parasitics("s").unwrap();
            prop_assert!(p.r_ohm <= last_r + 1e-12);
            prop_assert!(p.c_total_f >= last_c - 1e-24);
            last_r = p.r_ohm;
            last_c = p.c_total_f;
        }
    }

    /// The placer always produces a legal, symmetric placement on random
    /// small problems.
    #[test]
    fn placer_legalizes_random_problems(
        sizes in prop::collection::vec((400i64..3000, 400i64..3000), 2..6),
        seed in any::<u64>(),
    ) {
        let mut p = PlacementProblem::new();
        let ids: Vec<usize> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| p.add_block(Block::new(&format!("b{i}"), vec![(w, h)])))
            .collect();
        for w in ids.windows(2) {
            p.add_net(Net::new("n", vec![w[0], w[1]]));
        }
        let placement = Placer::new(seed).place(&p).unwrap();
        prop_assert!(!placement.has_overlaps(&p));
    }

    /// The router connects every net with length at least the HPWL lower
    /// bound and at most the Manhattan star upper bound.
    #[test]
    fn router_length_bounds(
        pins in prop::collection::vec((0i64..20_000, 0i64..20_000), 2..6),
    ) {
        let tech = Technology::finfet7();
        let pts: Vec<Point> = pins.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut problem = RoutingProblem::new();
        problem.add_net("n", pts.clone());
        let res = GlobalRouter::new(&tech).route(&problem).unwrap();
        let len = res.net("n").unwrap().total_len_nm();
        let mut bb = Rect::new(pts[0], pts[0]);
        for &p in &pts[1..] {
            bb = bb.union(&Rect::new(p, p));
        }
        prop_assert!(len >= bb.half_perimeter(), "len {len} < hpwl {}", bb.half_perimeter());
        let star: i64 = pts[1..].iter().map(|p| p.manhattan(pts[0])).sum();
        prop_assert!(len <= star.max(bb.half_perimeter()), "len {len} > star {star}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Global-route wiring: more parallel routes monotonically trade R for C.
    #[test]
    fn route_wire_monotone_in_k(
        layer in 1usize..7,
        len in 100i64..20_000,
        vias in 0u32..4,
    ) {
        use prima_core::{route_wire, GlobalRoute};
        let tech = Technology::finfet7();
        let route = GlobalRoute { layer, len_nm: len, via_ends: vias };
        let mut last_r = f64::INFINITY;
        let mut last_c = 0.0;
        for k in 1..=8 {
            let w = route_wire(&tech, &route, k);
            prop_assert!(w.r_ohm < last_r);
            prop_assert!(w.c_f >= last_c);
            last_r = w.r_ohm;
            last_c = w.c_f;
        }
    }

    /// Power-grid synthesis: drop scales with current and shrinks with
    /// strap width for any block position.
    #[test]
    fn power_grid_monotonicity(
        x in 500i64..11_000,
        y in 0i64..8_000,
        i_ua in 10.0f64..5_000.0,
    ) {
        use prima_route::power::{synthesize, PowerGridSpec};
        let tech = Technology::finfet7();
        let bbox = Rect::from_size(Point::new(0, 0), 12_000, 9_000);
        let block = Rect::from_size(Point::new(x, y), 800, 800);
        let i = i_ua * 1e-6;
        let thin = synthesize(&tech, bbox, &[(block, i)], &PowerGridSpec { strap_tracks: 2, ..Default::default() });
        let wide = synthesize(&tech, bbox, &[(block, i)], &PowerGridSpec { strap_tracks: 6, ..Default::default() });
        prop_assert!(wide.worst_drop_v <= thin.worst_drop_v);
        let double = synthesize(&tech, bbox, &[(block, 2.0 * i)], &PowerGridSpec { strap_tracks: 2, ..Default::default() });
        prop_assert!(double.worst_drop_v >= thin.worst_drop_v);
    }

    /// Detailed routing never produces conflicts on random two-net problems
    /// with random widths.
    #[test]
    fn detail_routing_conflict_free(
        y1 in 0i64..2_000,
        y2 in 0i64..2_000,
        k1 in 1u32..5,
        k2 in 1u32..5,
    ) {
        use prima_route::detail::DetailRouter;
        use prima_route::{GlobalRouter, RoutingProblem};
        let tech = Technology::finfet7();
        let mut p = RoutingProblem::new();
        p.add_net("a", vec![Point::new(0, y1), Point::new(6_000, y1)]);
        p.add_net("b", vec![Point::new(0, y2), Point::new(6_000, y2)]);
        let routes = GlobalRouter::new(&tech).route(&p).unwrap().routes().to_vec();
        let mut widths = std::collections::HashMap::new();
        widths.insert("a".to_string(), k1);
        widths.insert("b".to_string(), k2);
        let res = DetailRouter::new(&tech).assign(&routes, &widths).unwrap();
        prop_assert!(res.verify_no_conflicts());
        prop_assert_eq!(res.occupied_slots(), (k1 + k2) as usize);
    }
}
