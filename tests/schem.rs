//! Schematic static-analysis gate (prima-schem) integration tests.
//!
//! Three layers, mirroring `erc.rs`:
//!
//! 1. The paper's four benchmark circuits pass the schem gate with zero
//!    diagnostics — both through `schem_preflight` directly and through
//!    the flows (whose debug-build default runs the preflight first).
//! 2. Seeded-defect fixtures (supply short, floating gate, out-of-range
//!    bias, dangling net, unfactorable sizing) are each rejected with
//!    their exact `SCHEM.*` rule id — and rejected *fail-fast*: the flow
//!    errors out before the optimizer (and its simulation counter) is
//!    even constructed, in a tiny fraction of a cold run's wall time.
//! 3. A proptest that graph construction and the full lint suite are
//!    total and deterministic under shuffled instance insertion order.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::time::Instant;

use proptest::prelude::*;

use prima_flow::circuits::{CircuitSpec, CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{
    conventional_flow, optimized_flow_with, schem_preflight, FlowError, FlowOptions, VerifyPolicy,
};
use prima_layout::{DeviceSpec, PrimitiveSpec};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use prima_schem::{
    check_schem, ConnGraph, SchemCircuit, SchemInstance, SchemOptions, RULE_BIAS_V, RULE_DANGLE,
    RULE_FLOAT, RULE_SHORT, RULE_SIZE,
};
use prima_spice::devices::FetPolarity;

fn env() -> (Technology, Library) {
    (Technology::finfet7(), Library::standard())
}

fn to_schem(spec: &CircuitSpec) -> SchemCircuit {
    SchemCircuit {
        name: spec.name.clone(),
        instances: spec
            .instances
            .iter()
            .map(|i| SchemInstance {
                name: i.name.clone(),
                def: i.def.clone(),
                total_fins: i.total_fins,
                conn: i.conn.clone(),
            })
            .collect(),
        symmetry: spec.symmetry.clone(),
        symmetric_nets: spec.symmetric_nets.clone(),
    }
}

// ---------------------------------------------------------------------
// Clean circuits: the gate must stay silent on all four benchmarks.
// ---------------------------------------------------------------------

#[test]
fn all_four_benchmark_circuits_pass_with_zero_diagnostics() {
    let (tech, lib) = env();
    let vco = RoVco::small();
    let cases = vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(&tech, &lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(&tech, &lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(&tech, &lib).unwrap()),
    ];
    for (name, spec, biases) in cases {
        let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
        assert!(
            report.violations.is_empty(),
            "{name}: expected zero diagnostics, got {:?}",
            report.violations
        );
        assert!(report.nets_checked > 0, "{name}: graph was empty");
        for check in [
            "schem.bind",
            "schem.supply",
            "schem.float",
            "schem.dangle",
            "schem.size",
            "schem.bias",
            "schem.wire",
            "schem.topology",
            "schem.symmetry",
        ] {
            assert!(
                report.checks_run.iter().any(|c| c == check),
                "{name}: {check} missing from {:?}",
                report.checks_run
            );
        }
    }
}

/// Flow options with the static gates forced on, so the suite behaves
/// identically in debug and release builds (`Auto` is off under release).
fn gate_on() -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        ..FlowOptions::default()
    }
}

#[test]
fn flows_carry_a_passing_schem_report() {
    let (tech, lib) = env();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let out = optimized_flow_with(&tech, &lib, &spec, &biases, 11, gate_on()).unwrap();
    let report = out.schem.expect("schem preflight forced on");
    assert!(report.is_passing() && report.violations.is_empty());

    // The conventional baseline has no options variant; its preflight
    // follows the Auto policy, so assert only where Auto is on.
    let out = conventional_flow(&tech, &lib, &spec, 11).unwrap();
    if cfg!(debug_assertions) {
        let report = out.schem.expect("schem preflight is on in debug builds");
        assert!(report.is_passing() && report.violations.is_empty());
    }
}

// ---------------------------------------------------------------------
// Seeded defects: exact rule ids, and fail-fast flow rejection.
// ---------------------------------------------------------------------

/// Asserts the optimized flow rejects `spec` through the preflight: a
/// `FlowError::Verify` naming the rule, long before a cold run's seconds
/// of simulation — no simulation runs because the preflight fires before
/// the optimizer (owner of the simulation counter) is constructed.
fn assert_flow_rejects(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    rule: &str,
) {
    let start = Instant::now();
    let err = optimized_flow_with(tech, lib, spec, biases, 11, gate_on()).unwrap_err();
    let elapsed = start.elapsed();
    match err {
        FlowError::Verify { first, .. } => {
            assert!(
                first.contains(rule),
                "expected first violation to carry {rule}, got: {first}"
            );
        }
        other => panic!("expected FlowError::Verify carrying {rule}, got {other}"),
    }
    // A cold optimized run takes seconds; preflight rejection is microseconds.
    // The generous bound keeps the assertion meaningful on loaded CI hosts.
    assert!(
        elapsed.as_millis() < 500,
        "rejection took {elapsed:?}; preflight must fire before any optimization"
    );
}

#[test]
fn supply_short_fixture_is_rejected_with_exact_rule() {
    let (tech, mut lib) = env();
    // A defective switch whose NMOS channel directly bridges its two
    // terminals; wiring them to vdd and vssn shorts the rails.
    let mut def = lib.get("switch").cloned().unwrap();
    def.name = "short_switch".to_string();
    def.spec = PrimitiveSpec::new(
        "short_switch",
        vec![DeviceSpec::new("MSW", FetPolarity::Nmos, "b", "en", "a")],
    );
    lib.upsert(def);
    let mut spec = CsAmp::spec();
    spec.instances.push(prima_flow::PrimitiveInst::new(
        "sw",
        "short_switch",
        8,
        &[("a", "vdd"), ("b", "vssn"), ("en", "vin")],
    ));
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
    assert!(report.has_rule(RULE_SHORT), "{:?}", report.violations);
    assert!(!report.is_passing());
    assert_flow_rejects(&tech, &lib, &spec, &biases, RULE_SHORT);
}

#[test]
fn floating_gate_fixture_is_rejected_with_exact_rule() {
    let (tech, mut lib) = env();
    // An amplifier with a second branch whose gate net is internal and
    // undriven: no wire can ever reach it. Every declared port stays
    // bound in the template so the library survives the techlint gate
    // and the defect reaches schem's graph analysis.
    let mut def = lib.get("cs_amp").cloned().unwrap();
    def.name = "float_amp".to_string();
    def.spec = PrimitiveSpec::new(
        "float_amp",
        vec![
            DeviceSpec::new("M1", FetPolarity::Nmos, "out", "in", "vss"),
            DeviceSpec::new("M2", FetPolarity::Nmos, "out", "fg", "vss"),
        ],
    );
    lib.upsert(def);
    let mut spec = CsAmp::spec();
    spec.instances[0].def = "float_amp".to_string();
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
    assert!(report.has_rule(RULE_FLOAT), "{:?}", report.violations);
    assert_flow_rejects(&tech, &lib, &spec, &biases, RULE_FLOAT);
}

#[test]
fn out_of_range_bias_fixture_is_rejected_with_exact_rule() {
    let (tech, lib) = env();
    let spec = CsAmp::spec();
    let mut biases = CsAmp::biases(&tech, &lib).unwrap();
    // 5 V on a sub-volt finFET gate.
    biases.get_mut("m1").unwrap().set_v("vin", 5.0);

    let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
    assert!(report.has_rule(RULE_BIAS_V), "{:?}", report.violations);
    assert_flow_rejects(&tech, &lib, &spec, &biases, RULE_BIAS_V);
}

#[test]
fn dangling_net_fixture_is_rejected_with_exact_rule() {
    let (tech, lib) = env();
    let mut spec = CsAmp::spec();
    // Typo the load's output net: the amplifier output and the typo'd net
    // each end up with a single conducting terminal.
    for (port, net) in &mut spec.instances[1].conn {
        if port == "out" {
            *net = "vuot".to_string();
        }
    }
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
    let dangles = report
        .violations
        .iter()
        .filter(|v| v.rule_id == RULE_DANGLE)
        .count();
    assert_eq!(dangles, 2, "{:?}", report.violations);
    assert_flow_rejects(&tech, &lib, &spec, &biases, RULE_DANGLE);
}

#[test]
fn unfactorable_sizing_fixture_is_rejected_not_silently_skipped() {
    let (tech, lib) = env();
    let mut spec = CsAmp::spec();
    // 7 total fins admits no nfin*nf*m factorization over the standard
    // space; before the preflight this silently degraded the instance to
    // an ideal device instead of failing.
    spec.instances[0].total_fins = 7;
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let report = schem_preflight(&tech, &lib, &spec, Some(&biases));
    assert!(report.has_rule(RULE_SIZE), "{:?}", report.violations);
    assert_flow_rejects(&tech, &lib, &spec, &biases, RULE_SIZE);
}

// ---------------------------------------------------------------------
// Determinism: graph construction and the lint suite are total and
// insertion-order independent.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shuffling instance insertion order never changes the connectivity
    /// graph or the finalized diagnostics — for the clean OTA and for a
    /// defect-seeded variant of it.
    #[test]
    fn gate_is_deterministic_under_shuffled_instances(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let (tech, lib) = env();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        fn shuffle<T>(v: &mut [T], rng: &mut impl Rng) {
            for i in (1..v.len()).rev() {
                let j = rng.gen_range(0..=i);
                v.swap(i, j);
            }
        }

        for defective in [false, true] {
            let mut spec = FiveTOta::spec();
            if defective {
                // Disconnect one load drain: dangling-net defect.
                for (port, net) in &mut spec.instances[2].conn {
                    if port == "out" {
                        *net = "nowhere".to_string();
                    }
                }
            }
            let reference = to_schem(&spec);
            let mut shuffled = reference.clone();
            shuffle(&mut shuffled.instances, &mut rng);

            let g_ref = ConnGraph::build(&lib, &reference);
            let g_shuf = ConnGraph::build(&lib, &shuffled);
            prop_assert_eq!(g_ref.signature(), g_shuf.signature());

            let empty = HashMap::new();
            let opts = SchemOptions::default();
            let r_ref = check_schem(&tech, &lib, &reference, &empty, &opts);
            let r_shuf = check_schem(&tech, &lib, &shuffled, &empty, &opts);
            prop_assert_eq!(r_ref.violations, r_shuf.violations);
            prop_assert_eq!(r_ref.nets_checked, r_shuf.nets_checked);
        }
    }
}
