//! Resilience integration tests: the optimized flow must survive injected
//! faults — failed candidate evaluations, candidate panics, and forced
//! detail-routing failures — completing every benchmark circuit with
//! passing gates and an honest [`ResilienceReport`], while a zero-fault
//! plan reproduces the plain flow bit for bit.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use prima_core::{EvalLedger, RepairCursor};
use prima_flow::circuits::{CircuitSpec, CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{
    optimized_flow_resilient, optimized_flow_with, FaultPlan, FlowOptions, Health, RepairBudgets,
    VerifyPolicy,
};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};
use proptest::prelude::*;

const SEED: u64 = 11;

fn gate_on() -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        ..FlowOptions::default()
    }
}

fn benchmark_circuits(
    tech: &Technology,
    lib: &Library,
) -> Vec<(&'static str, CircuitSpec, HashMap<String, Bias>)> {
    let vco = RoVco::small();
    vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(tech, lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(tech, lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(tech, lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(tech, lib).unwrap()),
    ]
}

/// The acceptance scenario: with ~30% of candidate evaluations failing and
/// one forced detail-route failure per circuit, all four benchmark
/// circuits still complete end-to-end with passing gates, and the
/// resilience report enumerates what was absorbed.
#[test]
fn faulted_flows_complete_with_clean_gates_on_all_four_circuits() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    for (name, spec, biases) in benchmark_circuits(&tech, &lib) {
        // Discover a net the detail router actually routes, so the forced
        // failure is guaranteed to be hit (and retried).
        let base = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, gate_on())
            .unwrap_or_else(|e| panic!("{name}: baseline flow failed: {e}"));
        let routed_net = base
            .detailed
            .assignments
            .first()
            .map(|a| a.net.clone())
            .unwrap_or_else(|| panic!("{name}: baseline routed nothing"));

        let plan = FaultPlan::new(23)
            .with_eval_fail_rate(0.30)
            .with_route_fault(&routed_net, 1);
        let outcome = optimized_flow_resilient(
            &tech,
            &lib,
            &spec,
            &biases,
            SEED,
            gate_on(),
            &plan,
            RepairBudgets::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: faulted flow failed: {e}"));

        let verify = outcome.verify.expect("gate forced on");
        assert!(
            verify.is_passing(),
            "{name}: verify gate dirty under faults"
        );
        let erc = outcome.erc.expect("gate forced on");
        assert!(erc.is_passing(), "{name}: erc gate dirty under faults");

        let r = &outcome.resilience;
        assert_eq!(r.health, Health::Degraded, "{name}: expected Degraded");
        assert!(r.candidates_lost > 0, "{name}: no candidates ledgered");
        assert!(
            r.route_retries >= 1,
            "{name}: forced route fault on {routed_net} was never retried"
        );
        assert!(
            r.degradations
                .iter()
                .any(|d| d.stage == "routing" && d.scope == routed_net),
            "{name}: routing degradation for {routed_net} not reported"
        );
    }
}

/// A candidate that panics mid-evaluation is isolated, ledgered as a
/// panic, and the flow still completes with passing gates.
#[test]
fn candidate_panic_is_isolated_and_ledgered() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let plan = FaultPlan::new(5)
        .with_eval_panic("cs_amp", 0)
        .with_eval_panic("csrc_pmos", 1);
    let outcome = optimized_flow_resilient(
        &tech,
        &lib,
        &spec,
        &biases,
        SEED,
        gate_on(),
        &plan,
        RepairBudgets::default(),
    )
    .expect("flow survives candidate panics");
    let r = &outcome.resilience;
    assert_eq!(r.health, Health::Degraded);
    assert!(r.candidate_panics >= 1, "panic not ledgered as a panic");
    assert!(r.candidates_lost >= r.candidate_panics);
    assert!(outcome.verify.expect("gate on").is_passing());
}

/// A zero-fault plan must be invisible: the resilient entry point produces
/// bit-identical output to the plain optimized flow and reports Clean.
#[test]
fn zero_fault_plan_is_bit_identical_to_the_plain_flow() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    for (name, spec, biases) in benchmark_circuits(&tech, &lib) {
        let plain = optimized_flow_with(&tech, &lib, &spec, &biases, SEED, gate_on()).unwrap();
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        let resilient = optimized_flow_resilient(
            &tech,
            &lib,
            &spec,
            &biases,
            SEED,
            gate_on(),
            &plan,
            RepairBudgets::default(),
        )
        .unwrap();

        assert_eq!(
            plain.area_um2.to_bits(),
            resilient.area_um2.to_bits(),
            "{name}: area differs"
        );
        assert_eq!(
            plain.wirelength_um.to_bits(),
            resilient.wirelength_um.to_bits(),
            "{name}: wirelength differs"
        );
        assert_eq!(plain.detailed, resilient.detailed, "{name}: tracks differ");
        assert_eq!(
            plain.realization.layouts, resilient.realization.layouts,
            "{name}: layouts differ"
        );
        assert_eq!(
            plain.realization.net_wires, resilient.realization.net_wires,
            "{name}: net wires differ"
        );
        assert_eq!(resilient.resilience.health, Health::Clean, "{name}");
        assert!(resilient.resilience.is_clean(), "{name}");
    }
}

proptest! {
    /// The repair cursor terminates within the candidate count and never
    /// returns a rank the ledger has recorded as failed, for any failure
    /// pattern.
    #[test]
    fn repair_cursor_terminates_and_skips_failed(
        n in 1usize..12,
        failed_mask in proptest::collection::vec(any::<bool>(), 0..12),
        extra_calls in 0usize..4,
    ) {
        let candidates: Vec<(String, usize)> =
            (0..n).map(|i| ("dp".to_string(), i)).collect();
        let mut ledger = EvalLedger::new();
        for (i, &f) in failed_mask.iter().take(n).enumerate() {
            if f {
                ledger.record("dp", i, false, "injected".to_string());
            }
        }
        let mut cursor = RepairCursor::new(1);
        let mut seen = vec![cursor.current(0)];
        // At most n-1 demotions can succeed; after exhaustion every further
        // call must keep returning None (structural termination).
        for _ in 0..(n + extra_calls) {
            match cursor.demote(0, &candidates, &ledger) {
                Some(rank) => {
                    prop_assert!(rank < n);
                    prop_assert!(!ledger.is_failed("dp", rank),
                        "re-selected ledger-failed candidate {rank}");
                    prop_assert!(!seen.contains(&rank), "revisited rank {rank}");
                    prop_assert!(rank > *seen.last().unwrap(), "rank went backwards");
                    seen.push(rank);
                }
                None => {
                    // Pinned past the end: stays exhausted forever.
                    prop_assert!(cursor.demote(0, &candidates, &ledger).is_none());
                }
            }
        }
        prop_assert!(seen.len() <= n);
    }
}
