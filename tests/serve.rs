//! Serving integration tests: the acceptance suite for the batch
//! evaluation service (prima-serve). Overload sheds by priority and never
//! queues without bound; deadline-expired requests return within 2× their
//! deadline; retries are classified by error kind (transient shapes retry,
//! deterministic static-gate rejections never do); a 100-request
//! mixed-tenant soak over a 4-worker pool loses zero responses; and
//! cancelling a flow at an arbitrary candidate boundary leaves a shared
//! evaluation cache consistent — a later uncancelled run is bit-identical
//! to a cold fresh-cache run.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prima_cache::{CancelToken, EvalCache, Fingerprintable};
use prima_core::{FaultPlan, ServeOutcome};
use prima_flow::circuits::{CircuitSpec, CsAmp, FiveTOta};
use prima_flow::{
    optimized_flow_with, CachePolicy, FlowError, FlowOptions, FlowOutcome, VerifyPolicy,
};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library, TESTBENCH_VERSION};
use prima_serve::{is_retryable, BatchServer, Priority, ServeConfig, ServeError, ServeRequest};
use proptest::prelude::*;

fn server(config: ServeConfig) -> BatchServer {
    BatchServer::new(Technology::finfet7(), Library::standard(), config)
}

fn cs_amp(tenant: &str) -> ServeRequest {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    ServeRequest::new(tenant, CsAmp::spec(), CsAmp::biases(&tech, &lib).unwrap())
}

fn ota(tenant: &str) -> ServeRequest {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    ServeRequest::new(
        tenant,
        FiveTOta::spec(),
        FiveTOta::biases(&tech, &lib).unwrap(),
    )
}

/// Admission control: a full queue sheds strictly-lower-priority work
/// (which still gets a response) and refuses the rest — the queue never
/// grows past its bound.
#[test]
fn overload_sheds_by_priority_and_rejects_at_capacity() {
    let srv = server(ServeConfig {
        workers: 0, // the queue never drains: admission is deterministic
        queue_capacity: 3,
        ..ServeConfig::default()
    });
    let mut tickets = Vec::new();
    for _ in 0..3 {
        let mut req = cs_amp("tenant-low");
        req.priority = Priority::Low;
        tickets.push(srv.submit(req).unwrap());
    }
    // Queue full. Equal priority cannot preempt: rejected.
    let mut peer = cs_amp("tenant-low");
    peer.priority = Priority::Low;
    assert!(matches!(
        srv.submit(peer),
        Err(ServeError::Overloaded { capacity: 3 })
    ));
    // Higher priority preempts the oldest Low request.
    let mut vip = cs_amp("tenant-vip");
    vip.priority = Priority::High;
    let vip_ticket = srv.submit(vip).unwrap();
    let shed = tickets.remove(0).wait();
    assert_eq!(shed.outcome, ServeOutcome::Degraded);
    assert_eq!(shed.attempts, 0);
    assert!(
        shed.detail.contains("shed under overload"),
        "{}",
        shed.detail
    );

    let report = srv.finish();
    // Every submission resolved: 1 admission rejection, 1 shed, and the
    // rest flushed at shutdown (zero workers) — nothing lost.
    assert_eq!(report.total(), 5);
    assert_eq!(report.shed, 1);
    assert!(report.rejected >= 1);
    drop(vip_ticket);
}

/// A request that expires mid-service returns within twice its deadline —
/// cancellation checkpoints are dense enough that the worker notices the
/// expiry almost immediately.
#[test]
fn deadline_expiry_returns_within_twice_the_deadline() {
    let srv = server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let deadline = Duration::from_millis(120);
    let mut req = cs_amp("acme");
    req.deadline = Some(deadline);
    req.stall = Some(Duration::from_secs(60)); // would block for a minute
    let submitted = Instant::now();
    let report = srv.submit(req).unwrap().wait();
    let elapsed = submitted.elapsed();
    assert_eq!(report.outcome, ServeOutcome::DeadlineExceeded);
    assert!(
        elapsed < deadline * 2,
        "expired request resolved after {elapsed:?} (deadline {deadline:?})"
    );
    drop(srv.finish());
}

/// Retry classification: transient fault shapes retry and then succeed;
/// deterministic static-gate rejections resolve on the first attempt.
#[test]
fn retries_are_classified_by_error_kind() {
    // The classifier itself.
    assert!(is_retryable(&FlowError::RepairExhausted {
        circuit: "c".into(),
        stage: "detail routing".into(),
        attempts: 3,
        last: "congested".into(),
    }));
    assert!(!is_retryable(&FlowError::Verify {
        circuit: "c".into(),
        violations: 2,
        first: "SCHEM.SIZE".into(),
    }));

    let srv = server(ServeConfig {
        workers: 2,
        verify: VerifyPolicy::On,
        ..ServeConfig::default()
    });
    // Transient: more route faults than one attempt's budget absorbs.
    let mut transient = cs_amp("acme");
    transient.plan = FaultPlan::none().with_route_fault("vout", 10);
    // Deterministic: a sizing no standard configuration realizes.
    let mut broken = cs_amp("acme");
    broken.circuit.instances[0].total_fins = 1;

    let t1 = srv.submit(transient).unwrap();
    let t2 = srv.submit(broken).unwrap();
    let transient_report = t1.wait();
    let broken_report = t2.wait();

    assert!(
        transient_report.has_result(),
        "transient failure must recover via retry: {:?} ({})",
        transient_report.outcome,
        transient_report.detail
    );
    assert_eq!(
        transient_report.attempts, 2,
        "one retry after the faulted attempt"
    );
    assert_eq!(broken_report.outcome, ServeOutcome::Failed);
    assert_eq!(
        broken_report.attempts, 1,
        "deterministic gate rejection must not retry"
    );
    let report = srv.finish();
    assert_eq!(report.retries, 1);
}

/// The acceptance soak: 100 mixed-tenant requests over a 4-worker pool.
/// Zero lost responses; every request resolves to exactly one of
/// Completed / Degraded / Rejected / DeadlineExceeded; repeated-tenant
/// requests run warm against their shared cache namespace.
#[test]
fn hundred_request_mixed_tenant_soak_loses_nothing() {
    let srv = server(ServeConfig {
        workers: 4,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let tenants = ["acme", "globex", "initech"];
    let mut tickets = Vec::with_capacity(100);
    for i in 0..100u64 {
        let tenant = tenants[(i % 3) as usize];
        // Mostly the amplifier (repeated → warm hits); every ninth request
        // is the OTA for circuit diversity.
        let mut req = if i % 9 == 4 {
            ota(tenant)
        } else {
            cs_amp(tenant)
        };
        req.seed = 7;
        match i % 10 {
            // A slice of requests with an already-spent budget: these must
            // resolve DeadlineExceeded without running.
            3 => req.deadline = Some(Duration::ZERO),
            // A slice with a transient route fault absorbed by in-flow
            // repair: these complete degraded.
            7 => req.plan = FaultPlan::none().with_route_fault("vout", 1),
            _ => {}
        }
        tickets.push(srv.submit_blocking(req).unwrap());
    }

    let mut ids = std::collections::HashSet::new();
    for ticket in tickets {
        let r = ticket.wait();
        assert!(
            ids.insert(r.request_id),
            "request {} resolved twice",
            r.request_id
        );
        assert!(
            matches!(
                r.outcome,
                ServeOutcome::Completed
                    | ServeOutcome::Degraded
                    | ServeOutcome::Rejected
                    | ServeOutcome::DeadlineExceeded
            ),
            "request {} resolved outside the acceptance outcomes: {:?} ({})",
            r.request_id,
            r.outcome,
            r.detail
        );
    }
    assert_eq!(ids.len(), 100, "zero lost responses");

    let report = srv.finish();
    assert_eq!(report.total(), 100);
    assert_eq!(report.count(ServeOutcome::DeadlineExceeded), 10);
    assert!(report.count(ServeOutcome::Completed) >= 70);
    // Three tenants, two circuits each → at most six namespaces; repeated
    // identical requests must hit their tenant's warm namespace hard.
    assert!(report.cache_namespaces <= 6);
    let lookups = report.cache.hits + report.cache.misses;
    assert!(lookups > 0);
    let hit_rate = report.cache.hits as f64 / lookups as f64;
    assert!(
        hit_rate >= 0.9,
        "repeated-tenant requests should be ≥90% warm, got {:.1}%",
        hit_rate * 100.0
    );
}

/// Bit-level equality of everything physical in a `FlowOutcome`.
fn assert_bit_identical(what: &str, a: &FlowOutcome, b: &FlowOutcome) {
    assert_eq!(
        a.area_um2.to_bits(),
        b.area_um2.to_bits(),
        "{what}: area differs"
    );
    assert_eq!(
        a.wirelength_um.to_bits(),
        b.wirelength_um.to_bits(),
        "{what}: wirelength differs"
    );
    assert_eq!(a.detailed, b.detailed, "{what}: detailed routing differs");
    assert_eq!(
        a.realization.layouts, b.realization.layouts,
        "{what}: layouts differ"
    );
    assert_eq!(
        a.realization.net_wires, b.realization.net_wires,
        "{what}: net wires differ"
    );
}

fn shared_cache(tech: &Technology) -> Arc<EvalCache> {
    Arc::new(EvalCache::open(
        CachePolicy::MemoryOnly,
        tech.fingerprint(),
        TESTBENCH_VERSION,
    ))
}

fn flow_with_cache(
    tech: &Technology,
    lib: &Library,
    spec: &CircuitSpec,
    biases: &HashMap<String, Bias>,
    cache: &Arc<EvalCache>,
    cancel: Option<CancelToken>,
) -> Result<FlowOutcome, FlowError> {
    let options = FlowOptions {
        verify: VerifyPolicy::On,
        cache: CachePolicy::Shared(Arc::clone(cache)),
        cancel,
        ..FlowOptions::default()
    };
    optimized_flow_with(tech, lib, spec, biases, 11, options)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancelling mid-flow at a random candidate/Newton boundary leaves a
    /// shared cache consistent: nothing partial or faulted is stored, so a
    /// later uncancelled run over the same store is bit-identical to a
    /// cold fresh-cache run — and at least as warm.
    #[test]
    fn cancellation_at_random_boundary_keeps_shared_cache_consistent(k in 0u64..400) {
        let tech = Technology::finfet7();
        let lib = Library::standard();
        let spec = CsAmp::spec();
        let biases = CsAmp::biases(&tech, &lib).unwrap();

        let shared = shared_cache(&tech);
        // Trip the token after k cooperative checks: somewhere between the
        // very first candidate boundary and deep inside Newton iterations.
        let token = CancelToken::cancel_after_checks(k);
        match flow_with_cache(&tech, &lib, &spec, &biases, &shared, Some(token)) {
            Err(FlowError::Cancelled(_)) => {}
            Ok(_) => {} // k large enough that the flow finished first
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "cancelled run failed with a non-cancellation error: {other}"
                )));
            }
        }

        // The same store, uncancelled, must reproduce a cold fresh-cache
        // run bit for bit: only complete Ok evaluations were ever cached.
        let before_warm = shared.stats();
        let after = flow_with_cache(&tech, &lib, &spec, &biases, &shared, None)
            .map_err(|e| TestCaseError::Fail(format!("uncancelled warm run failed: {e}")))?;
        let cold_store = shared_cache(&tech);
        let cold = flow_with_cache(&tech, &lib, &spec, &biases, &cold_store, None)
            .map_err(|e| TestCaseError::Fail(format!("cold run failed: {e}")))?;
        assert_bit_identical("warm-after-cancel vs cold", &after, &cold);

        // And the aborted run's completed evaluations were not wasted.
        // Cache counters are cumulative per store, so compare the warm
        // run's own misses (delta over the post-cancel snapshot) against
        // the cold run: the warm run must miss no more often.
        let warm_stats = after.cache.expect("warm stats");
        let cold_stats = cold.cache.expect("cold stats");
        let warm_run_misses = warm_stats.misses - before_warm.misses;
        prop_assert!(
            warm_run_misses <= cold_stats.misses,
            "cancelled run poisoned the store: warm run had {} misses vs cold {}",
            warm_run_misses,
            cold_stats.misses
        );
    }
}
