//! Integration tests for the SPICE text front end: decks that exercise the
//! parser, the PDK model cards, and all three analyses together.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_pdk::Technology;
use prima_spice::analysis::ac::{AcSolver, FrequencySweep};
use prima_spice::analysis::dc::DcSolver;
use prima_spice::analysis::tran::TranSolver;
use prima_spice::measure;
use prima_spice::netlist::{parse, ModelLibrary};

/// Registers the PDK's device flavors under SPICE-style names.
fn pdk_models() -> ModelLibrary {
    let tech = Technology::finfet7();
    let mut lib = ModelLibrary::new();
    lib.insert("nfet", tech.nmos.clone());
    lib.insert("pfet", tech.pmos.clone());
    lib
}

#[test]
fn inverter_deck_dc_transfer() {
    let deck = "\
* CMOS inverter from the PDK flavors
VDD vdd 0 0.8
VIN in 0 0.2
MN out in 0 0 nfet w=0.5u l=14n
MP out in vdd vdd pfet w=1u l=14n
.end
";
    let c = parse(deck, &pdk_models()).unwrap();
    let op = DcSolver::new().solve(&c).unwrap();
    let out = c.find_node("out").unwrap();
    assert!(op.voltage(out) > 0.6, "low input gives high output");
}

#[test]
fn five_transistor_ota_deck() {
    // The paper's 5T OTA, written as a plain SPICE deck with subcircuits.
    let deck = "\
.subckt dp da db ga gb s
MA da ga s 0 nfet w=4.6u l=14n
MB db gb s 0 nfet w=4.6u l=14n
.ends
.subckt cmn in out
MREF in in 0 0 nfet w=1.2u l=14n
MOUT out in 0 0 nfet w=2.4u l=14n
.ends
.subckt cmp in out vdd
MREF in in vdd vdd pfet w=1.8u l=14n
MOUT out in vdd vdd pfet w=1.8u l=14n
.ends
VDD vdd 0 0.8
VINP vinp 0 DC 0.44 AC 0.5
VINN vinn 0 DC 0.44 AC -0.5
IB 0 n1 350u
X1 n4 n5 vinp vinn n3 dp
X2 n1 n3 cmn
X3 n4 n5 vdd cmp
CL n5 0 60f
.end
";
    let c = parse(deck, &pdk_models()).unwrap();
    let op = DcSolver::new().solve(&c).unwrap();
    let n5 = c.find_node("n5").unwrap();
    let vout = op.voltage(n5);
    assert!(vout > 0.1 && vout < 0.79, "output in range: {vout}");

    let ac = AcSolver::new()
        .solve_at_op(
            &c,
            &op,
            &FrequencySweep::Decade {
                start: 1e5,
                stop: 100e9,
                points_per_decade: 20,
            },
        )
        .unwrap();
    let gain = measure::dc_gain(&ac, n5).unwrap();
    assert!(gain > 3.0, "OTA gain {gain}");
    assert!(measure::unity_gain_freq(&ac, n5).is_ok());
}

#[test]
fn ring_oscillator_deck_transient() {
    // Three-inverter ring with a PWL kick, from text.
    let deck = "\
.subckt inv in out vdd
MN out in 0 0 nfet w=0.3u l=14n
MP out in vdd vdd pfet w=0.6u l=14n
C1 out 0 1f
.ends
VDD vdd 0 0.8
X1 a b vdd inv
X2 b c vdd inv
X3 c a vdd inv
IKICK 0 a PWL(0 0 10p 100u 60p 100u 70p 0)
.end
";
    let c = parse(deck, &pdk_models()).unwrap();
    let res = TranSolver::new(0.5e-12, 3e-9).solve(&c).unwrap();
    let a = c.find_node("a").unwrap();
    let wave = res.voltage(a);
    let t = res.times().to_vec();
    let swing = measure::settled_peak_to_peak(&wave).unwrap();
    assert!(swing > 0.5, "ring oscillates with swing {swing}");
    let f = measure::osc_frequency(&t, &wave, 5).expect("frequency measurable");
    assert!(f > 1e9 && f < 1e12, "ring frequency {f}");
}

#[test]
fn rc_ladder_deck_matches_analytic_bandwidth() {
    let deck = "\
VIN in 0 DC 0 AC 1
R1 in m1 1k
C1 m1 0 100f
R2 m1 out 1k
C2 out 0 100f
.end
";
    let c = parse(deck, &pdk_models()).unwrap();
    let ac = AcSolver::new()
        .solve(
            &c,
            &FrequencySweep::Decade {
                start: 1e6,
                stop: 1e12,
                points_per_decade: 30,
            },
        )
        .unwrap();
    let out = c.find_node("out").unwrap();
    let f3 = measure::bw_3db(&ac, out).unwrap();
    // Two-section ladder: f3dB ≈ 0.374/(2πRC) for equal sections.
    let rc = 1e3 * 100e-15;
    let expect = 0.374 / (2.0 * std::f64::consts::PI * rc);
    assert!(
        (f3 - expect).abs() / expect < 0.05,
        "ladder f3dB {f3} vs {expect}"
    );
}

#[test]
fn malformed_decks_are_rejected_cleanly() {
    let bad = [
        "R1 a 0 notanumber\n",
        "M1 d g s b missingmodel w=1u l=14n\n",
        "X1 a b nosub\n",
    ];
    for deck in bad {
        assert!(
            parse(deck, &pdk_models()).is_err(),
            "deck should fail: {deck}"
        );
    }
}
