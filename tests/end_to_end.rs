//! End-to-end integration tests spanning every crate: the paper's headline
//! claims checked on the smallest circuits that exhibit them.

#![allow(clippy::unwrap_used)]

use prima_flow::circuits::{CsAmp, FiveTOta};
use prima_flow::{conventional_flow, optimized_flow, FlowKind, Realization};
use prima_pdk::Technology;
use prima_primitives::Library;

fn env() -> (Technology, Library) {
    (Technology::finfet7(), Library::standard())
}

/// The central claim: the optimized flow tracks the schematic more closely
/// than the conventional flow on the bandwidth-type metric it optimizes.
#[test]
fn optimized_flow_beats_conventional_on_ota_ugf() {
    let (tech, lib) = env();
    let spec = FiveTOta::spec();
    let sch = FiveTOta::measure(&tech, &lib, &Realization::schematic()).unwrap();

    let conv = conventional_flow(&tech, &lib, &spec, 42).unwrap();
    let conv_m = FiveTOta::measure(&tech, &lib, &conv.realization).unwrap();

    let biases = FiveTOta::biases(&tech, &lib).unwrap();
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 42).unwrap();
    let opt_m = FiveTOta::measure(&tech, &lib, &opt.realization).unwrap();

    let dev = |x: f64| (x - sch.ugf_ghz).abs() / sch.ugf_ghz;
    assert!(
        dev(opt_m.ugf_ghz) < dev(conv_m.ugf_ghz),
        "UGF deviation: optimized {:.1}% vs conventional {:.1}%",
        100.0 * dev(opt_m.ugf_ghz),
        100.0 * dev(conv_m.ugf_ghz)
    );
    // Current also tracks better (the mirror story).
    let devi = |x: f64| (x - sch.current_ua).abs() / sch.current_ua;
    assert!(
        devi(opt_m.current_ua) < devi(conv_m.current_ua),
        "current deviation: optimized {:.1}% vs conventional {:.1}%",
        100.0 * devi(opt_m.current_ua),
        100.0 * devi(conv_m.current_ua)
    );
}

/// Every flow's realization must simulate successfully and keep the
/// circuit functional (gain within a factor of the schematic's).
#[test]
fn all_flows_produce_functional_cs_amp() {
    let (tech, lib) = env();
    let spec = CsAmp::spec();
    let sch = CsAmp::measure(&tech, &lib, &Realization::schematic()).unwrap();
    let biases = CsAmp::biases(&tech, &lib).unwrap();

    let conv = conventional_flow(&tech, &lib, &spec, 3).unwrap();
    assert_eq!(conv.kind, FlowKind::Conventional);
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 3).unwrap();
    assert_eq!(opt.kind, FlowKind::Optimized);

    for outcome in [&conv, &opt] {
        let m = CsAmp::measure(&tech, &lib, &outcome.realization).unwrap();
        assert!(
            m.gain_db > sch.gain_db - 6.0,
            "{:?}: gain collapsed to {} dB (schematic {})",
            outcome.kind,
            m.gain_db,
            sch.gain_db
        );
        assert!(
            m.ugf_ghz > 0.2 * sch.ugf_ghz,
            "{:?}: UGF collapsed",
            outcome.kind
        );
    }
}

/// Flows are deterministic for a fixed seed.
#[test]
fn flows_are_deterministic() {
    let (tech, lib) = env();
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let a = optimized_flow(&tech, &lib, &spec, &biases, 9).unwrap();
    let b = optimized_flow(&tech, &lib, &spec, &biases, 9).unwrap();
    assert_eq!(a.realization.layouts.len(), b.realization.layouts.len());
    for (name, la) in &a.realization.layouts {
        let lb = &b.realization.layouts[name];
        assert_eq!(la.config, lb.config, "{name}: different config across runs");
    }
    for (net, wa) in &a.realization.net_wires {
        let wb = &b.realization.net_wires[net];
        assert!(
            (wa.r_ohm - wb.r_ohm).abs() < 1e-12,
            "{net}: route widths differ"
        );
    }
}

/// The optimized flow's tuned layouts never carry more cost than the
/// untuned defaults the conventional flow uses, measured per primitive.
#[test]
fn optimized_primitives_have_lower_cost_than_defaults() {
    use prima_core::{Optimizer, Phase};
    use prima_primitives::Bias;

    let (tech, lib) = env();
    let spec = FiveTOta::spec();
    let biases = FiveTOta::biases(&tech, &lib).unwrap();
    let conv = conventional_flow(&tech, &lib, &spec, 5).unwrap();
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 5).unwrap();

    let o = Optimizer::new(&tech);
    for inst in &spec.instances {
        let def = lib.get(&inst.def).unwrap();
        let bias = biases
            .get(&inst.name)
            .cloned()
            .unwrap_or_else(|| Bias::nominal(&tech, &def.class));
        let sch = o.schematic_reference(def, &bias, inst.total_fins).unwrap();
        let conv_layout = conv.realization.layouts[&inst.name].clone();
        let opt_layout = opt.realization.layouts[&inst.name].clone();
        let conv_cost = o
            .evaluate_layout(def, &bias, conv_layout, &sch, Phase::Selection)
            .unwrap()
            .cost;
        let opt_cost = o
            .evaluate_layout(def, &bias, opt_layout, &sch, Phase::Selection)
            .unwrap()
            .cost;
        assert!(
            opt_cost <= conv_cost * 1.05 + 0.5,
            "{}: optimized cost {:.2} vs conventional {:.2}",
            inst.name,
            opt_cost,
            conv_cost
        );
    }
}

/// Placement honors symmetry pairs through the whole flow.
#[test]
fn strongarm_flow_respects_symmetry_and_measures() {
    use prima_flow::circuits::StrongArm;
    let (tech, lib) = env();
    let spec = StrongArm::spec();
    let conv = conventional_flow(&tech, &lib, &spec, 11).unwrap();
    // The comparator still resolves with conventional layouts.
    let m = StrongArm::measure(&tech, &lib, &conv.realization).unwrap();
    assert!(
        m.delay_ps > 0.0 && m.delay_ps < 500.0,
        "delay {}",
        m.delay_ps
    );
}

/// Detailed routing consumes the reconciled widths: a tuned net occupies
/// that many adjacent tracks, and the assignment is conflict-free.
#[test]
fn detailed_routing_honors_port_widths() {
    let (tech, lib) = env();
    let spec = FiveTOta::spec();
    let biases = FiveTOta::biases(&tech, &lib).unwrap();
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 21).unwrap();
    assert!(opt.detailed.verify_no_conflicts());
    assert!(opt.detailed.occupied_slots() > 0);
    let conv = conventional_flow(&tech, &lib, &spec, 21).unwrap();
    assert!(conv.detailed.verify_no_conflicts());
    // The optimized flow's widened nets occupy at least as many slots.
    assert!(opt.detailed.occupied_slots() >= conv.detailed.occupied_slots());
}

/// The methodology is technology-portable: the same flow runs unchanged on
/// the bulk planar node (the paper's claimed extension).
#[test]
fn flow_runs_on_bulk_node() {
    use prima_core::{enumerate_configs, Optimizer};
    use prima_primitives::Bias;
    let bulk = prima_pdk::Technology::bulk16();
    let lib = Library::standard();
    let dp = lib.get("dp").unwrap();
    let bias = Bias::nominal(&bulk, &dp.class);
    let opt = Optimizer::new(&bulk);
    let configs = enumerate_configs(64, &[2, 4, 8], 4);
    let picks = opt.select(dp, &bias, &configs, 2).unwrap();
    assert!(!picks.is_empty());
    let tuned = opt.tune(dp, &bias, picks[0].layout.clone()).unwrap();
    assert!(tuned.cost.is_finite());
    assert!(tuned.cost <= picks[0].cost + 1e-9);
}

/// The conventional baseline is non-hierarchical: its flat transistor-level
/// netting produces substantially more wirelength than the hierarchical
/// optimized flow on the same circuit.
#[test]
fn conventional_flat_placement_costs_wirelength() {
    let (tech, lib) = env();
    let spec = FiveTOta::spec();
    let biases = FiveTOta::biases(&tech, &lib).unwrap();
    let conv = conventional_flow(&tech, &lib, &spec, 42).unwrap();
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 42).unwrap();
    assert!(
        conv.wirelength_um > 1.3 * opt.wirelength_um,
        "flat {} µm vs hierarchical {} µm",
        conv.wirelength_um,
        opt.wirelength_um
    );
}
