//! Acceptance tests for PR "prima-corners": PVT corner sweeps and seeded
//! Monte-Carlo mismatch as first-class scenarios.
//!
//! The contract under test: all four benchmark circuits complete the
//! optimized flow with a five-corner set enabled on finfet7 and sky130ish
//! with every gate clean and worst-case margins reported; a seeded
//! corner-killer fixture resolves `Degraded` (not `Err`) with an exact
//! `CORNER.*` id; warm corner sweeps hit the evaluation cache; zero-corner
//! runs are bit-identical to the plain flow; the mismatch sampler is
//! bit-identical under shuffled instance insertion order; and
//! corner-perturbed technology fingerprints never collide.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use prima_core::Health;
use prima_flow::circuits::{CircuitSpec, CsAmp, FiveTOta, RoVco, StrongArm};
use prima_flow::{
    instance_fingerprint, optimized_flow, optimized_flow_with, CachePolicy, CornerOptions,
    CornerPolicy, FlowError, FlowOptions, FlowOutcome, MismatchSampler, VerifyPolicy,
};
use prima_pdk::{CornerBounds, CornerSpec, Technology};
use prima_primitives::{Bias, Library};
use proptest::prelude::*;

const SEED: u64 = 11;
const FIVE: [&str; 5] = ["tt", "ss", "ff", "sf", "fs"];

fn benchmark_circuits(
    tech: &Technology,
    lib: &Library,
) -> Vec<(&'static str, CircuitSpec, HashMap<String, Bias>)> {
    let vco = RoVco::small();
    vec![
        ("cs_amp", CsAmp::spec(), CsAmp::biases(tech, lib).unwrap()),
        (
            "ota5t",
            FiveTOta::spec(),
            FiveTOta::biases(tech, lib).unwrap(),
        ),
        (
            "strongarm",
            StrongArm::spec(),
            StrongArm::biases(tech, lib).unwrap(),
        ),
        ("vco", vco.spec(), vco.biases(tech, lib).unwrap()),
    ]
}

/// A five-corner sweep (no Monte-Carlo) with verification gates on.
fn sweep_options(mc_samples: u32) -> FlowOptions {
    FlowOptions {
        verify: VerifyPolicy::On,
        corners: CornerPolicy::Sweep(CornerOptions {
            corners: Some(FIVE.iter().map(|s| s.to_string()).collect()),
            mc_samples,
            ..CornerOptions::default()
        }),
        ..FlowOptions::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("prima-corners-{}-{tag}.bin", std::process::id()))
}

// ---------------------------------------------------------------------------
// Five-corner sweeps complete cleanly on both technologies
// ---------------------------------------------------------------------------

fn assert_clean_sweep(tech: &Technology, mc_samples: u32) {
    let lib = Library::standard();
    for (name, spec, biases) in benchmark_circuits(tech, &lib) {
        let out = optimized_flow_with(tech, &lib, &spec, &biases, SEED, sweep_options(mc_samples))
            .unwrap_or_else(|e| panic!("{}/{name}: corner sweep failed: {e}", tech.name));
        let corners = out
            .corners
            .as_ref()
            .unwrap_or_else(|| panic!("{}/{name}: no corner report", tech.name));
        // Every corner gate must end up clean. In-budget candidate
        // fallbacks are documented degradations (matching the nominal
        // gate-repair convention), but nothing may exhaust its budget.
        assert!(
            corners.diagnostics.is_empty(),
            "{}/{name}: corner diagnostics: {:#?}",
            tech.name,
            corners.diagnostics
        );
        if corners.fallbacks == 0 {
            assert_eq!(
                out.resilience.health,
                Health::Clean,
                "{}/{name}: degraded without a fallback: {:?}",
                tech.name,
                out.resilience.degradations
            );
        } else {
            assert!(
                out.resilience
                    .degradations
                    .iter()
                    .all(|d| d.stage == "corners"),
                "{}/{name}: non-corner degradation: {:?}",
                tech.name,
                out.resilience.degradations
            );
        }
        assert_eq!(corners.corners, FIVE, "{}/{name}", tech.name);
        assert!(
            corners.all_pass(),
            "{}/{name}: corner failures: {:#?}",
            tech.name,
            corners.instances
        );
        assert!(!corners.instances.is_empty(), "{}/{name}", tech.name);
        for inst in &corners.instances {
            assert_eq!(
                inst.measures.len(),
                FIVE.len(),
                "{}: {}",
                name,
                inst.instance
            );
            assert!(
                inst.worst_margin.is_finite() && inst.worst_margin >= 0.0,
                "{}/{name}/{}: worst margin {} at {:?}",
                tech.name,
                inst.instance,
                inst.worst_margin,
                inst.worst_corner
            );
            assert!(!inst.worst_corner.is_empty());
        }
        assert!(corners.worst_margin.is_finite() && corners.worst_margin >= 0.0);
        assert!(
            corners.sims > 0,
            "{}/{name}: corner sims not counted",
            tech.name
        );
        assert_eq!(out.sims.get("corners"), Some(&corners.sims));
        if mc_samples > 0 {
            let mc = corners.mc.expect("yield estimate");
            assert_eq!(mc.samples, mc_samples);
            assert!(mc.passed <= mc.samples);
            assert!(mc.yield_fraction() >= 0.0 && mc.yield_fraction() <= 1.0);
        } else {
            assert!(corners.mc.is_none());
        }
    }
}

#[test]
fn five_corner_sweep_is_clean_on_finfet7_with_yield() {
    assert_clean_sweep(&Technology::finfet7(), 4);
}

#[test]
fn five_corner_sweep_is_clean_on_sky130ish() {
    assert_clean_sweep(&Technology::sky130ish(), 0);
}

// ---------------------------------------------------------------------------
// Corner-killer fixture: Degraded, never Err
// ---------------------------------------------------------------------------

/// A deck whose declared bounds admit a supply-collapse corner the
/// devices cannot operate under: every candidate fails it, the repair
/// budget exhausts, and the flow must resolve `Degraded` with the exact
/// `CORNER.EXHAUSTED` id — not an error.
fn killer_tech() -> Technology {
    let mut tech = Technology::finfet7();
    tech.corners.bounds = CornerBounds {
        vdd_scale: (0.05, 1.15),
        ..tech.corners.bounds.clone()
    };
    tech.corners.corners.push(CornerSpec {
        name: "vdd_collapse".to_string(),
        vdd_scale: 0.15,
        ..CornerSpec::tt()
    });
    tech
}

#[test]
fn corner_killer_degrades_with_exact_id() {
    let tech = killer_tech();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let options = FlowOptions {
        verify: VerifyPolicy::On,
        corners: CornerPolicy::Sweep(CornerOptions {
            corners: Some(vec!["vdd_collapse".to_string()]),
            repair_attempts: 2,
            mc_samples: 0,
            ..CornerOptions::default()
        }),
        ..FlowOptions::default()
    };
    let out = optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, options)
        .expect("corner killer must degrade, not error");
    assert_eq!(out.resilience.health, Health::Degraded);
    let corners = out.corners.expect("corner report");
    assert!(
        corners
            .diagnostics
            .iter()
            .any(|v| v.rule_id == "CORNER.EXHAUSTED"),
        "expected CORNER.EXHAUSTED, got {:#?}",
        corners.diagnostics
    );
    assert!(
        out.resilience
            .degradations
            .iter()
            .any(|d| d.stage == "corners"),
        "corner degradation not mirrored into resilience: {:#?}",
        out.resilience.degradations
    );
    // The failing corner is reported with a non-passing measure.
    assert!(!corners.all_pass());
}

/// Asking for a corner the deck does not declare degrades with
/// `CORNER.UNKNOWN` and sweeps the rest.
#[test]
fn unknown_corner_name_degrades_and_continues() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let options = FlowOptions {
        corners: CornerPolicy::Sweep(CornerOptions {
            corners: Some(vec!["tt".to_string(), "zz_bogus".to_string()]),
            mc_samples: 0,
            ..CornerOptions::default()
        }),
        ..FlowOptions::default()
    };
    let out = optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, options).unwrap();
    let corners = out.corners.expect("corner report");
    assert_eq!(corners.corners, vec!["tt".to_string()]);
    assert!(corners
        .diagnostics
        .iter()
        .any(|v| v.rule_id == "CORNER.UNKNOWN"));
    assert_eq!(out.resilience.health, Health::Degraded);
}

// ---------------------------------------------------------------------------
// Cache behavior: warm corner sweeps hit; nominal entries never aliased
// ---------------------------------------------------------------------------

#[test]
fn warm_corner_sweep_hits_cache_and_replays_report() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let path = temp_path("warm");
    let _ = fs::remove_file(&path);
    let options = || FlowOptions {
        cache: CachePolicy::Persistent(path.clone()),
        ..sweep_options(2)
    };
    let cold = optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, options()).unwrap();
    let warm = optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, options()).unwrap();
    let _ = fs::remove_file(&path);

    let stats = warm.cache.expect("warm cache stats");
    assert!(
        stats.hit_rate() >= 0.9,
        "warm corner sweep hit rate {:.3} < 0.9 ({} hits / {} misses)",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    // The warm sweep replays the cold one's corner verdicts bit for bit
    // (sim counts legitimately differ: the warm run hits the cache).
    let (c, w) = (cold.corners.expect("cold"), warm.corners.expect("warm"));
    let strip_sims = |mut r: prima_flow::CornerReport| {
        r.sims = 0;
        r
    };
    assert_eq!(
        strip_sims(c.clone()),
        strip_sims(w.clone()),
        "corner report not replayed from cache"
    );
    // Corner evaluations hit the cache, so the warm run re-simulates
    // (almost) nothing in the corner phase.
    assert!(
        w.sims * 10 <= c.sims.max(1),
        "warm corner sims {} vs cold {}",
        w.sims,
        c.sims
    );
}

#[test]
fn corner_runs_leave_nominal_results_unchanged() {
    // A sweep must not perturb the nominal selection when every corner
    // passes: physical results match the plain flow bit for bit.
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let plain = optimized_flow(&tech, &lib, &CsAmp::spec(), &biases, SEED).unwrap();
    let swept =
        optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, sweep_options(0)).unwrap();
    assert_bit_identical("cs_amp", "swept vs plain", &swept, &plain);
}

// ---------------------------------------------------------------------------
// Zero-cost opt-out: CornerPolicy::Off is bit-identical to the plain flow
// ---------------------------------------------------------------------------

/// Bit-level equality of everything physical in a `FlowOutcome`.
fn assert_bit_identical(name: &str, what: &str, a: &FlowOutcome, b: &FlowOutcome) {
    assert_eq!(
        a.area_um2.to_bits(),
        b.area_um2.to_bits(),
        "{name}: {what}: area differs"
    );
    assert_eq!(
        a.wirelength_um.to_bits(),
        b.wirelength_um.to_bits(),
        "{name}: {what}: wirelength differs"
    );
    assert_eq!(
        a.detailed, b.detailed,
        "{name}: {what}: detailed routing differs"
    );
    assert_eq!(
        a.realization.layouts, b.realization.layouts,
        "{name}: {what}: layouts differ"
    );
    assert_eq!(
        a.realization.net_wires, b.realization.net_wires,
        "{name}: {what}: net wires differ"
    );
}

#[test]
fn corner_policy_off_is_bit_identical_to_plain_flow_on_all_circuits() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    for (name, spec, biases) in benchmark_circuits(&tech, &lib) {
        let plain = optimized_flow(&tech, &lib, &spec, &biases, SEED)
            .unwrap_or_else(|e| panic!("{name}: plain flow failed: {e}"));
        let off = optimized_flow_with(
            &tech,
            &lib,
            &spec,
            &biases,
            SEED,
            FlowOptions {
                corners: CornerPolicy::Off,
                ..FlowOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: off-policy flow failed: {e}"));
        assert_bit_identical(name, "off vs plain", &off, &plain);
        assert!(off.corners.is_none(), "{name}: report without a sweep");
        assert_eq!(off.sims, plain.sims, "{name}: sims differ");
        assert_eq!(off.sims.get("corners"), Some(&0));
    }
}

// ---------------------------------------------------------------------------
// Determinism: seeded yield replays; deadlines cancel corner loops
// ---------------------------------------------------------------------------

#[test]
fn seeded_yield_replays_exactly() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let run = || {
        optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, sweep_options(3))
            .unwrap()
            .corners
            .expect("corner report")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, different variation report");
    assert_eq!(a.mc.expect("yield").seed, CornerOptions::default().mc_seed);
}

#[test]
fn expired_deadline_cancels_a_corner_sweep() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let biases = CsAmp::biases(&tech, &lib).unwrap();
    let options = FlowOptions {
        deadline: Some(Duration::from_millis(1)),
        ..sweep_options(4)
    };
    match optimized_flow_with(&tech, &lib, &CsAmp::spec(), &biases, SEED, options) {
        Err(FlowError::Cancelled(_)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fingerprint-aliasing regression guard
// ---------------------------------------------------------------------------

/// Corner-perturbed decks must produce technology fingerprints distinct
/// from nominal and from each other, across the full table on all three
/// technologies (`tt` is the intentional identity and is excluded).
#[test]
fn corner_fingerprints_never_collide() {
    use prima_cache::Fingerprintable;
    let mut seen = Vec::new();
    for tech in [
        Technology::finfet7(),
        Technology::bulk16(),
        Technology::sky130ish(),
    ] {
        seen.push((format!("{}/nominal", tech.name), tech.fingerprint()));
        for c in &tech.corners.corners {
            if c.is_identity() {
                // tt == nominal by design: warm sweeps reuse nominal
                // entries for the tt point.
                assert_eq!(
                    tech.apply_corner(c).fingerprint(),
                    tech.fingerprint(),
                    "{}: tt must alias nominal",
                    tech.name
                );
                continue;
            }
            seen.push((
                format!("{}/{}", tech.name, c.name),
                tech.apply_corner(c).fingerprint(),
            ));
        }
    }
    for (i, (name_a, fp_a)) in seen.iter().enumerate() {
        for (name_b, fp_b) in &seen[i + 1..] {
            assert_ne!(fp_a, fp_b, "fingerprint collision: {name_a} vs {name_b}");
        }
    }
}

// ---------------------------------------------------------------------------
// Monte-Carlo sampler: order invariance (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For a fixed seed, the draws an instance receives are bit-identical
    /// no matter what order instances are inserted or sampled in.
    #[test]
    fn mc_draws_are_order_invariant(
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        samples in 1u32..4,
    ) {
        // Fisher–Yates permutation of the instance visit order, driven by
        // a drawn seed (the vendored proptest has no shuffle strategy).
        let mut order: Vec<usize> = (0..8).collect();
        let mut state = perm_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let sampler = MismatchSampler::new(seed);
        let instances: Vec<_> = (0..8)
            .map(|i| (format!("m{i}"), instance_fingerprint(&format!("m{i}"), "dp", 960)))
            .collect();
        // Reference pass: natural order.
        let mut reference = HashMap::new();
        for (name, fp) in &instances {
            for s in 0..samples {
                reference.insert((name.clone(), s), sampler.draw(*fp, s));
            }
        }
        // Shuffled pass: same draws, bit for bit.
        for &i in &order {
            let (name, fp) = &instances[i];
            for s in (0..samples).rev() {
                let d = sampler.draw(*fp, s);
                let r = reference[&(name.clone(), s)];
                prop_assert_eq!(d.z_vth.to_bits(), r.z_vth.to_bits());
                prop_assert_eq!(d.z_mobility.to_bits(), r.z_mobility.to_bits());
            }
        }
    }
}
