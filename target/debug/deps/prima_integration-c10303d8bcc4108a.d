/root/repo/target/debug/deps/prima_integration-c10303d8bcc4108a.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/prima_integration-c10303d8bcc4108a: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
