/root/repo/target/debug/deps/prima_core-86e4b852c0ca251f.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libprima_core-86e4b852c0ca251f.rmeta: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
