/root/repo/target/debug/deps/table7-5ff11fee26389161.d: crates/bench/benches/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-5ff11fee26389161.rmeta: crates/bench/benches/table7.rs Cargo.toml

crates/bench/benches/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
