/root/repo/target/debug/deps/invariants-75c4981f56e86558.d: crates/integration/../../tests/invariants.rs

/root/repo/target/debug/deps/invariants-75c4981f56e86558: crates/integration/../../tests/invariants.rs

crates/integration/../../tests/invariants.rs:
