/root/repo/target/debug/deps/prima_bench-7d4beebce50a6652.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_bench-7d4beebce50a6652.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
