/root/repo/target/debug/deps/prima_layout-044aee1e8fd55c09.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/debug/deps/prima_layout-044aee1e8fd55c09: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
