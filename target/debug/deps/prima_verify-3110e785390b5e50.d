/root/repo/target/debug/deps/prima_verify-3110e785390b5e50.d: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/debug/deps/libprima_verify-3110e785390b5e50.rlib: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/debug/deps/libprima_verify-3110e785390b5e50.rmeta: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

crates/verify/src/lib.rs:
crates/verify/src/connectivity.rs:
crates/verify/src/drc.rs:
crates/verify/src/lints.rs:
