/root/repo/target/debug/deps/prima_core-0bce0fd8e56b1a52.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libprima_core-0bce0fd8e56b1a52.rlib: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libprima_core-0bce0fd8e56b1a52.rmeta: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
