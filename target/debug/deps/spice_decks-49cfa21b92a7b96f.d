/root/repo/target/debug/deps/spice_decks-49cfa21b92a7b96f.d: crates/integration/../../tests/spice_decks.rs

/root/repo/target/debug/deps/spice_decks-49cfa21b92a7b96f: crates/integration/../../tests/spice_decks.rs

crates/integration/../../tests/spice_decks.rs:
