/root/repo/target/debug/deps/fig2_table1-a329276b04853c27.d: crates/bench/benches/fig2_table1.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_table1-a329276b04853c27.rmeta: crates/bench/benches/fig2_table1.rs Cargo.toml

crates/bench/benches/fig2_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
