/root/repo/target/debug/deps/rand-d4ec6a253daee500.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d4ec6a253daee500.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
