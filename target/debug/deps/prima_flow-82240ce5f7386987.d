/root/repo/target/debug/deps/prima_flow-82240ce5f7386987.d: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/debug/deps/libprima_flow-82240ce5f7386987.rlib: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/debug/deps/libprima_flow-82240ce5f7386987.rmeta: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

crates/flow/src/lib.rs:
crates/flow/src/builder.rs:
crates/flow/src/circuits.rs:
crates/flow/src/circuits/cs_amp.rs:
crates/flow/src/circuits/ota.rs:
crates/flow/src/circuits/strongarm.rs:
crates/flow/src/circuits/vco.rs:
crates/flow/src/flows.rs:
