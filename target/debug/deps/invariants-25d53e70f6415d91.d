/root/repo/target/debug/deps/invariants-25d53e70f6415d91.d: crates/integration/../../tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-25d53e70f6415d91.rmeta: crates/integration/../../tests/invariants.rs Cargo.toml

crates/integration/../../tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
