/root/repo/target/debug/deps/prima_place-a616edf1a05c6c07.d: crates/place/src/lib.rs

/root/repo/target/debug/deps/libprima_place-a616edf1a05c6c07.rlib: crates/place/src/lib.rs

/root/repo/target/debug/deps/libprima_place-a616edf1a05c6c07.rmeta: crates/place/src/lib.rs

crates/place/src/lib.rs:
