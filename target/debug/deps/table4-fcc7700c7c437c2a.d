/root/repo/target/debug/deps/table4-fcc7700c7c437c2a.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-fcc7700c7c437c2a.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
