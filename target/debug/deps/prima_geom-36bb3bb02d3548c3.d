/root/repo/target/debug/deps/prima_geom-36bb3bb02d3548c3.d: crates/geom/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_geom-36bb3bb02d3548c3.rmeta: crates/geom/src/lib.rs Cargo.toml

crates/geom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
