/root/repo/target/debug/deps/prima_core-db794df671e4c075.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/prima_core-db794df671e4c075: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
