/root/repo/target/debug/deps/prima_layout-e3fddd41f8a78ca1.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/debug/deps/libprima_layout-e3fddd41f8a78ca1.rlib: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/debug/deps/libprima_layout-e3fddd41f8a78ca1.rmeta: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
