/root/repo/target/debug/deps/spice_decks-398ee5182e5a791d.d: crates/integration/../../tests/spice_decks.rs Cargo.toml

/root/repo/target/debug/deps/libspice_decks-398ee5182e5a791d.rmeta: crates/integration/../../tests/spice_decks.rs Cargo.toml

crates/integration/../../tests/spice_decks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
