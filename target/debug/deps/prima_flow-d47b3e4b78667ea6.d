/root/repo/target/debug/deps/prima_flow-d47b3e4b78667ea6.d: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs Cargo.toml

/root/repo/target/debug/deps/libprima_flow-d47b3e4b78667ea6.rmeta: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/builder.rs:
crates/flow/src/circuits.rs:
crates/flow/src/circuits/cs_amp.rs:
crates/flow/src/circuits/ota.rs:
crates/flow/src/circuits/strongarm.rs:
crates/flow/src/circuits/vco.rs:
crates/flow/src/flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
