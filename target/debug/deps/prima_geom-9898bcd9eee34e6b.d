/root/repo/target/debug/deps/prima_geom-9898bcd9eee34e6b.d: crates/geom/src/lib.rs

/root/repo/target/debug/deps/libprima_geom-9898bcd9eee34e6b.rlib: crates/geom/src/lib.rs

/root/repo/target/debug/deps/libprima_geom-9898bcd9eee34e6b.rmeta: crates/geom/src/lib.rs

crates/geom/src/lib.rs:
