/root/repo/target/debug/deps/robustness-a2438cff0c62e8c2.d: crates/spice/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-a2438cff0c62e8c2.rmeta: crates/spice/tests/robustness.rs Cargo.toml

crates/spice/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
