/root/repo/target/debug/deps/proptest-3d4d725d0fbb4814.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-3d4d725d0fbb4814.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-3d4d725d0fbb4814.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/prelude.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
