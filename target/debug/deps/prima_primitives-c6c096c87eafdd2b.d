/root/repo/target/debug/deps/prima_primitives-c6c096c87eafdd2b.d: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs Cargo.toml

/root/repo/target/debug/deps/libprima_primitives-c6c096c87eafdd2b.rmeta: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs Cargo.toml

crates/primitives/src/lib.rs:
crates/primitives/src/bias.rs:
crates/primitives/src/circuit.rs:
crates/primitives/src/library.rs:
crates/primitives/src/metrics.rs:
crates/primitives/src/montecarlo.rs:
crates/primitives/src/testbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
