/root/repo/target/debug/deps/prima_verify-30ceac76d7d31dfe.d: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/debug/deps/prima_verify-30ceac76d7d31dfe: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

crates/verify/src/lib.rs:
crates/verify/src/connectivity.rs:
crates/verify/src/drc.rs:
crates/verify/src/lints.rs:
