/root/repo/target/debug/deps/end_to_end-30c5e1b7ce0b0642.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-30c5e1b7ce0b0642: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
