/root/repo/target/debug/deps/prima_place-6900c91f6d0524ba.d: crates/place/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_place-6900c91f6d0524ba.rmeta: crates/place/src/lib.rs Cargo.toml

crates/place/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
