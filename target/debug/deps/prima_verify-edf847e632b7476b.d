/root/repo/target/debug/deps/prima_verify-edf847e632b7476b.d: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/debug/deps/libprima_verify-edf847e632b7476b.rlib: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/debug/deps/libprima_verify-edf847e632b7476b.rmeta: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

crates/verify/src/lib.rs:
crates/verify/src/connectivity.rs:
crates/verify/src/drc.rs:
crates/verify/src/lints.rs:
