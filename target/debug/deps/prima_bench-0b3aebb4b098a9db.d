/root/repo/target/debug/deps/prima_bench-0b3aebb4b098a9db.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/prima_bench-0b3aebb4b098a9db: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
