/root/repo/target/debug/deps/prima_geom-48c8d444d6fa2795.d: crates/geom/src/lib.rs

/root/repo/target/debug/deps/prima_geom-48c8d444d6fa2795: crates/geom/src/lib.rs

crates/geom/src/lib.rs:
