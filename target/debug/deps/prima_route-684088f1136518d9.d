/root/repo/target/debug/deps/prima_route-684088f1136518d9.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/debug/deps/prima_route-684088f1136518d9: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
