/root/repo/target/debug/deps/prima_pdk-68a890f9c29ab637.d: crates/pdk/src/lib.rs

/root/repo/target/debug/deps/prima_pdk-68a890f9c29ab637: crates/pdk/src/lib.rs

crates/pdk/src/lib.rs:
