/root/repo/target/debug/deps/robustness-c49ae07c14b9cda3.d: crates/spice/tests/robustness.rs

/root/repo/target/debug/deps/robustness-c49ae07c14b9cda3: crates/spice/tests/robustness.rs

crates/spice/tests/robustness.rs:
