/root/repo/target/debug/deps/parking_lot-496040c6390f7358.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-496040c6390f7358.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
