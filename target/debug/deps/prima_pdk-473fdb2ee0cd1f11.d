/root/repo/target/debug/deps/prima_pdk-473fdb2ee0cd1f11.d: crates/pdk/src/lib.rs

/root/repo/target/debug/deps/libprima_pdk-473fdb2ee0cd1f11.rlib: crates/pdk/src/lib.rs

/root/repo/target/debug/deps/libprima_pdk-473fdb2ee0cd1f11.rmeta: crates/pdk/src/lib.rs

crates/pdk/src/lib.rs:
