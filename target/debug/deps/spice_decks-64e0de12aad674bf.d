/root/repo/target/debug/deps/spice_decks-64e0de12aad674bf.d: crates/integration/../../tests/spice_decks.rs

/root/repo/target/debug/deps/spice_decks-64e0de12aad674bf: crates/integration/../../tests/spice_decks.rs

crates/integration/../../tests/spice_decks.rs:
