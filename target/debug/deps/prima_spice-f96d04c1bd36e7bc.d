/root/repo/target/debug/deps/prima_spice-f96d04c1bd36e7bc.d: crates/spice/src/lib.rs crates/spice/src/analysis.rs crates/spice/src/analysis/ac.rs crates/spice/src/analysis/dc.rs crates/spice/src/analysis/sweep.rs crates/spice/src/analysis/tran.rs crates/spice/src/devices.rs crates/spice/src/measure.rs crates/spice/src/netlist.rs crates/spice/src/netlist/parser.rs crates/spice/src/num.rs crates/spice/src/report.rs

/root/repo/target/debug/deps/prima_spice-f96d04c1bd36e7bc: crates/spice/src/lib.rs crates/spice/src/analysis.rs crates/spice/src/analysis/ac.rs crates/spice/src/analysis/dc.rs crates/spice/src/analysis/sweep.rs crates/spice/src/analysis/tran.rs crates/spice/src/devices.rs crates/spice/src/measure.rs crates/spice/src/netlist.rs crates/spice/src/netlist/parser.rs crates/spice/src/num.rs crates/spice/src/report.rs

crates/spice/src/lib.rs:
crates/spice/src/analysis.rs:
crates/spice/src/analysis/ac.rs:
crates/spice/src/analysis/dc.rs:
crates/spice/src/analysis/sweep.rs:
crates/spice/src/analysis/tran.rs:
crates/spice/src/devices.rs:
crates/spice/src/measure.rs:
crates/spice/src/netlist.rs:
crates/spice/src/netlist/parser.rs:
crates/spice/src/num.rs:
crates/spice/src/report.rs:
