/root/repo/target/debug/deps/prima_geom-56bdb876638a6293.d: crates/geom/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_geom-56bdb876638a6293.rmeta: crates/geom/src/lib.rs Cargo.toml

crates/geom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
