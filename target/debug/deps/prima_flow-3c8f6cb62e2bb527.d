/root/repo/target/debug/deps/prima_flow-3c8f6cb62e2bb527.d: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/debug/deps/prima_flow-3c8f6cb62e2bb527: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

crates/flow/src/lib.rs:
crates/flow/src/builder.rs:
crates/flow/src/circuits.rs:
crates/flow/src/circuits/cs_amp.rs:
crates/flow/src/circuits/ota.rs:
crates/flow/src/circuits/strongarm.rs:
crates/flow/src/circuits/vco.rs:
crates/flow/src/flows.rs:
