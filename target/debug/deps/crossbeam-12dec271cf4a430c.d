/root/repo/target/debug/deps/crossbeam-12dec271cf4a430c.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-12dec271cf4a430c.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
