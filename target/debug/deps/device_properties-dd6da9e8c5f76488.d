/root/repo/target/debug/deps/device_properties-dd6da9e8c5f76488.d: crates/spice/tests/device_properties.rs

/root/repo/target/debug/deps/device_properties-dd6da9e8c5f76488: crates/spice/tests/device_properties.rs

crates/spice/tests/device_properties.rs:
