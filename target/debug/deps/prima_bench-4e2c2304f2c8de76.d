/root/repo/target/debug/deps/prima_bench-4e2c2304f2c8de76.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-4e2c2304f2c8de76.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-4e2c2304f2c8de76.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
