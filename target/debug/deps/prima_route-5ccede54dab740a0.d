/root/repo/target/debug/deps/prima_route-5ccede54dab740a0.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/debug/deps/libprima_route-5ccede54dab740a0.rlib: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/debug/deps/libprima_route-5ccede54dab740a0.rmeta: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
