/root/repo/target/debug/deps/prima_spice-5cb0bfe3e9d8d1ea.d: crates/spice/src/lib.rs crates/spice/src/analysis.rs crates/spice/src/analysis/ac.rs crates/spice/src/analysis/dc.rs crates/spice/src/analysis/sweep.rs crates/spice/src/analysis/tran.rs crates/spice/src/devices.rs crates/spice/src/measure.rs crates/spice/src/netlist.rs crates/spice/src/netlist/parser.rs crates/spice/src/num.rs crates/spice/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libprima_spice-5cb0bfe3e9d8d1ea.rmeta: crates/spice/src/lib.rs crates/spice/src/analysis.rs crates/spice/src/analysis/ac.rs crates/spice/src/analysis/dc.rs crates/spice/src/analysis/sweep.rs crates/spice/src/analysis/tran.rs crates/spice/src/devices.rs crates/spice/src/measure.rs crates/spice/src/netlist.rs crates/spice/src/netlist/parser.rs crates/spice/src/num.rs crates/spice/src/report.rs Cargo.toml

crates/spice/src/lib.rs:
crates/spice/src/analysis.rs:
crates/spice/src/analysis/ac.rs:
crates/spice/src/analysis/dc.rs:
crates/spice/src/analysis/sweep.rs:
crates/spice/src/analysis/tran.rs:
crates/spice/src/devices.rs:
crates/spice/src/measure.rs:
crates/spice/src/netlist.rs:
crates/spice/src/netlist/parser.rs:
crates/spice/src/num.rs:
crates/spice/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
