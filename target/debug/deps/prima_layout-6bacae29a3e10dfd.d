/root/repo/target/debug/deps/prima_layout-6bacae29a3e10dfd.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libprima_layout-6bacae29a3e10dfd.rmeta: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs Cargo.toml

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
