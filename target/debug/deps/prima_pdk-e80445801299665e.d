/root/repo/target/debug/deps/prima_pdk-e80445801299665e.d: crates/pdk/src/lib.rs

/root/repo/target/debug/deps/libprima_pdk-e80445801299665e.rlib: crates/pdk/src/lib.rs

/root/repo/target/debug/deps/libprima_pdk-e80445801299665e.rmeta: crates/pdk/src/lib.rs

crates/pdk/src/lib.rs:
