/root/repo/target/debug/deps/prima_bench-aa338edcea7d86a1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_bench-aa338edcea7d86a1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
