/root/repo/target/debug/deps/prima_integration-ac7ac4503473942b.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_integration-ac7ac4503473942b.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
