/root/repo/target/debug/deps/fig5_layouts-967a25da3677f08d.d: crates/bench/benches/fig5_layouts.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_layouts-967a25da3677f08d.rmeta: crates/bench/benches/fig5_layouts.rs Cargo.toml

crates/bench/benches/fig5_layouts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
