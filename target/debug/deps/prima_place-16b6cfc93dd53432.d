/root/repo/target/debug/deps/prima_place-16b6cfc93dd53432.d: crates/place/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_place-16b6cfc93dd53432.rmeta: crates/place/src/lib.rs Cargo.toml

crates/place/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
