/root/repo/target/debug/deps/table8-a844c6ee525168f1.d: crates/bench/benches/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-a844c6ee525168f1.rmeta: crates/bench/benches/table8.rs Cargo.toml

crates/bench/benches/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
