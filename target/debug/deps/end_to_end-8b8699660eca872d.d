/root/repo/target/debug/deps/end_to_end-8b8699660eca872d.d: crates/integration/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-8b8699660eca872d.rmeta: crates/integration/../../tests/end_to_end.rs Cargo.toml

crates/integration/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
