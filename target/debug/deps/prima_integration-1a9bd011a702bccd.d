/root/repo/target/debug/deps/prima_integration-1a9bd011a702bccd.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/prima_integration-1a9bd011a702bccd: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
