/root/repo/target/debug/deps/prima_route-8f59fbb22a5bd137.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libprima_route-8f59fbb22a5bd137.rmeta: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs Cargo.toml

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
