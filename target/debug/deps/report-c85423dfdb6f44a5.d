/root/repo/target/debug/deps/report-c85423dfdb6f44a5.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-c85423dfdb6f44a5.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
