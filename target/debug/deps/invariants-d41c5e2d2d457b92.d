/root/repo/target/debug/deps/invariants-d41c5e2d2d457b92.d: crates/integration/../../tests/invariants.rs

/root/repo/target/debug/deps/invariants-d41c5e2d2d457b92: crates/integration/../../tests/invariants.rs

crates/integration/../../tests/invariants.rs:
