/root/repo/target/debug/deps/rand-0688009077cb7caf.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0688009077cb7caf.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0688009077cb7caf.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
