/root/repo/target/debug/deps/prima_place-e9954d0c19463bb7.d: crates/place/src/lib.rs

/root/repo/target/debug/deps/libprima_place-e9954d0c19463bb7.rlib: crates/place/src/lib.rs

/root/repo/target/debug/deps/libprima_place-e9954d0c19463bb7.rmeta: crates/place/src/lib.rs

crates/place/src/lib.rs:
