/root/repo/target/debug/deps/prima_integration-d83a6e84fb34a4b9.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_integration-d83a6e84fb34a4b9.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
