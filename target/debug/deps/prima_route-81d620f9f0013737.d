/root/repo/target/debug/deps/prima_route-81d620f9f0013737.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/debug/deps/libprima_route-81d620f9f0013737.rlib: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/debug/deps/libprima_route-81d620f9f0013737.rmeta: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
