/root/repo/target/debug/deps/prima_primitives-81533cf6290b3573.d: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

/root/repo/target/debug/deps/libprima_primitives-81533cf6290b3573.rlib: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

/root/repo/target/debug/deps/libprima_primitives-81533cf6290b3573.rmeta: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

crates/primitives/src/lib.rs:
crates/primitives/src/bias.rs:
crates/primitives/src/circuit.rs:
crates/primitives/src/library.rs:
crates/primitives/src/metrics.rs:
crates/primitives/src/montecarlo.rs:
crates/primitives/src/testbench.rs:
