/root/repo/target/debug/deps/prima_pdk-10940b4ecb496496.d: crates/pdk/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_pdk-10940b4ecb496496.rmeta: crates/pdk/src/lib.rs Cargo.toml

crates/pdk/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
