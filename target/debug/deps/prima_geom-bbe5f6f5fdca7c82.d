/root/repo/target/debug/deps/prima_geom-bbe5f6f5fdca7c82.d: crates/geom/src/lib.rs

/root/repo/target/debug/deps/libprima_geom-bbe5f6f5fdca7c82.rlib: crates/geom/src/lib.rs

/root/repo/target/debug/deps/libprima_geom-bbe5f6f5fdca7c82.rmeta: crates/geom/src/lib.rs

crates/geom/src/lib.rs:
