/root/repo/target/debug/deps/drc_lvs-c05645de22d7236a.d: crates/integration/../../tests/drc_lvs.rs Cargo.toml

/root/repo/target/debug/deps/libdrc_lvs-c05645de22d7236a.rmeta: crates/integration/../../tests/drc_lvs.rs Cargo.toml

crates/integration/../../tests/drc_lvs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
