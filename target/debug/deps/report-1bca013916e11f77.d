/root/repo/target/debug/deps/report-1bca013916e11f77.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-1bca013916e11f77: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
