/root/repo/target/debug/deps/prima_verify-82c1fd70793c5c6a.d: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs Cargo.toml

/root/repo/target/debug/deps/libprima_verify-82c1fd70793c5c6a.rmeta: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/connectivity.rs:
crates/verify/src/drc.rs:
crates/verify/src/lints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
