/root/repo/target/debug/deps/table5-595c299a33640fd8.d: crates/bench/benches/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-595c299a33640fd8.rmeta: crates/bench/benches/table5.rs Cargo.toml

crates/bench/benches/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
