/root/repo/target/debug/deps/device_properties-6666aba20829fcd2.d: crates/spice/tests/device_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdevice_properties-6666aba20829fcd2.rmeta: crates/spice/tests/device_properties.rs Cargo.toml

crates/spice/tests/device_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
