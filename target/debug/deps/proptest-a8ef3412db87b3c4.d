/root/repo/target/debug/deps/proptest-a8ef3412db87b3c4.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-a8ef3412db87b3c4.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/prelude.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
