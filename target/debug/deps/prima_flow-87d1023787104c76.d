/root/repo/target/debug/deps/prima_flow-87d1023787104c76.d: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/debug/deps/libprima_flow-87d1023787104c76.rlib: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/debug/deps/libprima_flow-87d1023787104c76.rmeta: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

crates/flow/src/lib.rs:
crates/flow/src/builder.rs:
crates/flow/src/circuits.rs:
crates/flow/src/circuits/cs_amp.rs:
crates/flow/src/circuits/ota.rs:
crates/flow/src/circuits/strongarm.rs:
crates/flow/src/circuits/vco.rs:
crates/flow/src/flows.rs:
