/root/repo/target/debug/deps/prima_layout-532dd40f962f3ac6.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/debug/deps/libprima_layout-532dd40f962f3ac6.rlib: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/debug/deps/libprima_layout-532dd40f962f3ac6.rmeta: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
