/root/repo/target/debug/deps/end_to_end-607bd4e7834a187c.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-607bd4e7834a187c: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
