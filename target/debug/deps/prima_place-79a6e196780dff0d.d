/root/repo/target/debug/deps/prima_place-79a6e196780dff0d.d: crates/place/src/lib.rs

/root/repo/target/debug/deps/prima_place-79a6e196780dff0d: crates/place/src/lib.rs

crates/place/src/lib.rs:
