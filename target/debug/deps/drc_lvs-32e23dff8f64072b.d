/root/repo/target/debug/deps/drc_lvs-32e23dff8f64072b.d: crates/integration/../../tests/drc_lvs.rs

/root/repo/target/debug/deps/drc_lvs-32e23dff8f64072b: crates/integration/../../tests/drc_lvs.rs

crates/integration/../../tests/drc_lvs.rs:
