/root/repo/target/debug/deps/prima_core-bf5ce73e73a244a8.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libprima_core-bf5ce73e73a244a8.rlib: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libprima_core-bf5ce73e73a244a8.rmeta: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
