/root/repo/target/debug/deps/prima_integration-563620df28f1f4f4.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libprima_integration-563620df28f1f4f4.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libprima_integration-563620df28f1f4f4.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
