/root/repo/target/debug/examples/ota_flow-e1aa3195bd9d5d16.d: crates/flow/../../examples/ota_flow.rs

/root/repo/target/debug/examples/ota_flow-e1aa3195bd9d5d16: crates/flow/../../examples/ota_flow.rs

crates/flow/../../examples/ota_flow.rs:
