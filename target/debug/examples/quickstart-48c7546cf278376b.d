/root/repo/target/debug/examples/quickstart-48c7546cf278376b.d: crates/flow/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-48c7546cf278376b.rmeta: crates/flow/../../examples/quickstart.rs Cargo.toml

crates/flow/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
