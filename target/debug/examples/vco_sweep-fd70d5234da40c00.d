/root/repo/target/debug/examples/vco_sweep-fd70d5234da40c00.d: crates/flow/../../examples/vco_sweep.rs

/root/repo/target/debug/examples/vco_sweep-fd70d5234da40c00: crates/flow/../../examples/vco_sweep.rs

crates/flow/../../examples/vco_sweep.rs:
