/root/repo/target/debug/examples/comparator_waves-bcfb55b381fe8e23.d: crates/flow/../../examples/comparator_waves.rs

/root/repo/target/debug/examples/comparator_waves-bcfb55b381fe8e23: crates/flow/../../examples/comparator_waves.rs

crates/flow/../../examples/comparator_waves.rs:
