/root/repo/target/debug/examples/primitive_explorer-d1f66f9b8220ffe7.d: crates/flow/../../examples/primitive_explorer.rs

/root/repo/target/debug/examples/primitive_explorer-d1f66f9b8220ffe7: crates/flow/../../examples/primitive_explorer.rs

crates/flow/../../examples/primitive_explorer.rs:
