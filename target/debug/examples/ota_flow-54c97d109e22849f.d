/root/repo/target/debug/examples/ota_flow-54c97d109e22849f.d: crates/flow/../../examples/ota_flow.rs

/root/repo/target/debug/examples/ota_flow-54c97d109e22849f: crates/flow/../../examples/ota_flow.rs

crates/flow/../../examples/ota_flow.rs:
