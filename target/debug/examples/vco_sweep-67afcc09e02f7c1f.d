/root/repo/target/debug/examples/vco_sweep-67afcc09e02f7c1f.d: crates/flow/../../examples/vco_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libvco_sweep-67afcc09e02f7c1f.rmeta: crates/flow/../../examples/vco_sweep.rs Cargo.toml

crates/flow/../../examples/vco_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
