/root/repo/target/debug/examples/quickstart-cb19d5f2b7d9a58b.d: crates/flow/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cb19d5f2b7d9a58b: crates/flow/../../examples/quickstart.rs

crates/flow/../../examples/quickstart.rs:
