/root/repo/target/debug/examples/comparator_waves-abc77157847f89cc.d: crates/flow/../../examples/comparator_waves.rs Cargo.toml

/root/repo/target/debug/examples/libcomparator_waves-abc77157847f89cc.rmeta: crates/flow/../../examples/comparator_waves.rs Cargo.toml

crates/flow/../../examples/comparator_waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
