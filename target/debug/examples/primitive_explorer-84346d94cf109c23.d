/root/repo/target/debug/examples/primitive_explorer-84346d94cf109c23.d: crates/flow/../../examples/primitive_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libprimitive_explorer-84346d94cf109c23.rmeta: crates/flow/../../examples/primitive_explorer.rs Cargo.toml

crates/flow/../../examples/primitive_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
