/root/repo/target/debug/examples/ota_flow-aa04f069bb54a4d4.d: crates/flow/../../examples/ota_flow.rs Cargo.toml

/root/repo/target/debug/examples/libota_flow-aa04f069bb54a4d4.rmeta: crates/flow/../../examples/ota_flow.rs Cargo.toml

crates/flow/../../examples/ota_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
