/root/repo/target/release/deps/prima_flow-01d430f5e372fb9c.d: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/release/deps/libprima_flow-01d430f5e372fb9c.rlib: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

/root/repo/target/release/deps/libprima_flow-01d430f5e372fb9c.rmeta: crates/flow/src/lib.rs crates/flow/src/builder.rs crates/flow/src/circuits.rs crates/flow/src/circuits/cs_amp.rs crates/flow/src/circuits/ota.rs crates/flow/src/circuits/strongarm.rs crates/flow/src/circuits/vco.rs crates/flow/src/flows.rs

crates/flow/src/lib.rs:
crates/flow/src/builder.rs:
crates/flow/src/circuits.rs:
crates/flow/src/circuits/cs_amp.rs:
crates/flow/src/circuits/ota.rs:
crates/flow/src/circuits/strongarm.rs:
crates/flow/src/circuits/vco.rs:
crates/flow/src/flows.rs:
