/root/repo/target/release/deps/prima_primitives-5294475465e06af1.d: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

/root/repo/target/release/deps/prima_primitives-5294475465e06af1: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

crates/primitives/src/lib.rs:
crates/primitives/src/bias.rs:
crates/primitives/src/circuit.rs:
crates/primitives/src/library.rs:
crates/primitives/src/metrics.rs:
crates/primitives/src/montecarlo.rs:
crates/primitives/src/testbench.rs:
