/root/repo/target/release/deps/robustness-a6fc7b9c9e0d995f.d: crates/spice/tests/robustness.rs

/root/repo/target/release/deps/robustness-a6fc7b9c9e0d995f: crates/spice/tests/robustness.rs

crates/spice/tests/robustness.rs:
