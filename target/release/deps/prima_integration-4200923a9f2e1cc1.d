/root/repo/target/release/deps/prima_integration-4200923a9f2e1cc1.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libprima_integration-4200923a9f2e1cc1.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libprima_integration-4200923a9f2e1cc1.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
