/root/repo/target/release/deps/prima_place-441bbb27a0ad04f7.d: crates/place/src/lib.rs

/root/repo/target/release/deps/prima_place-441bbb27a0ad04f7: crates/place/src/lib.rs

crates/place/src/lib.rs:
