/root/repo/target/release/deps/prima_route-4cf0daa6973df7ee.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/release/deps/libprima_route-4cf0daa6973df7ee.rlib: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/release/deps/libprima_route-4cf0daa6973df7ee.rmeta: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
