/root/repo/target/release/deps/prima_integration-4c911105347bafc4.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/prima_integration-4c911105347bafc4: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
