/root/repo/target/release/deps/end_to_end-fea07da638b7462a.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-fea07da638b7462a: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
