/root/repo/target/release/deps/prima_bench-fec1ddcc62c53de5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/prima_bench-fec1ddcc62c53de5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
