/root/repo/target/release/deps/prima_pdk-db739faa9706009d.d: crates/pdk/src/lib.rs

/root/repo/target/release/deps/libprima_pdk-db739faa9706009d.rlib: crates/pdk/src/lib.rs

/root/repo/target/release/deps/libprima_pdk-db739faa9706009d.rmeta: crates/pdk/src/lib.rs

crates/pdk/src/lib.rs:
