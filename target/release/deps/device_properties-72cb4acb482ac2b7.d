/root/repo/target/release/deps/device_properties-72cb4acb482ac2b7.d: crates/spice/tests/device_properties.rs

/root/repo/target/release/deps/device_properties-72cb4acb482ac2b7: crates/spice/tests/device_properties.rs

crates/spice/tests/device_properties.rs:
