/root/repo/target/release/deps/prima_verify-633aa56f0630ee2c.d: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/release/deps/libprima_verify-633aa56f0630ee2c.rlib: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

/root/repo/target/release/deps/libprima_verify-633aa56f0630ee2c.rmeta: crates/verify/src/lib.rs crates/verify/src/connectivity.rs crates/verify/src/drc.rs crates/verify/src/lints.rs

crates/verify/src/lib.rs:
crates/verify/src/connectivity.rs:
crates/verify/src/drc.rs:
crates/verify/src/lints.rs:
