/root/repo/target/release/deps/prima_route-5f711e803f28f1db.d: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

/root/repo/target/release/deps/prima_route-5f711e803f28f1db: crates/route/src/lib.rs crates/route/src/detail.rs crates/route/src/power.rs

crates/route/src/lib.rs:
crates/route/src/detail.rs:
crates/route/src/power.rs:
