/root/repo/target/release/deps/prima_core-f5f1fb3c21d11885.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/prima_core-f5f1fb3c21d11885: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
