/root/repo/target/release/deps/report-d45c88efe0649fd6.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-d45c88efe0649fd6: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
