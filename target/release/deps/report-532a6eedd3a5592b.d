/root/repo/target/release/deps/report-532a6eedd3a5592b.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-532a6eedd3a5592b: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
