/root/repo/target/release/deps/prima_geom-e0943d623d195f38.d: crates/geom/src/lib.rs

/root/repo/target/release/deps/libprima_geom-e0943d623d195f38.rlib: crates/geom/src/lib.rs

/root/repo/target/release/deps/libprima_geom-e0943d623d195f38.rmeta: crates/geom/src/lib.rs

crates/geom/src/lib.rs:
