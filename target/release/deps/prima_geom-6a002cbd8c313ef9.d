/root/repo/target/release/deps/prima_geom-6a002cbd8c313ef9.d: crates/geom/src/lib.rs

/root/repo/target/release/deps/prima_geom-6a002cbd8c313ef9: crates/geom/src/lib.rs

crates/geom/src/lib.rs:
