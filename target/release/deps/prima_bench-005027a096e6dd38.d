/root/repo/target/release/deps/prima_bench-005027a096e6dd38.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-005027a096e6dd38.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-005027a096e6dd38.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
