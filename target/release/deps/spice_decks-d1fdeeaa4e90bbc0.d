/root/repo/target/release/deps/spice_decks-d1fdeeaa4e90bbc0.d: crates/integration/../../tests/spice_decks.rs

/root/repo/target/release/deps/spice_decks-d1fdeeaa4e90bbc0: crates/integration/../../tests/spice_decks.rs

crates/integration/../../tests/spice_decks.rs:
