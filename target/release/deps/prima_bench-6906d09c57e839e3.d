/root/repo/target/release/deps/prima_bench-6906d09c57e839e3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-6906d09c57e839e3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-6906d09c57e839e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
