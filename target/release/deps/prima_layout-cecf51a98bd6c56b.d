/root/repo/target/release/deps/prima_layout-cecf51a98bd6c56b.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/release/deps/libprima_layout-cecf51a98bd6c56b.rlib: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/release/deps/libprima_layout-cecf51a98bd6c56b.rmeta: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
