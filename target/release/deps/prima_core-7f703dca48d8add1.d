/root/repo/target/release/deps/prima_core-7f703dca48d8add1.d: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libprima_core-7f703dca48d8add1.rlib: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libprima_core-7f703dca48d8add1.rmeta: crates/core/src/lib.rs crates/core/src/accounting.rs crates/core/src/cost.rs crates/core/src/ports.rs crates/core/src/selection.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/accounting.rs:
crates/core/src/cost.rs:
crates/core/src/ports.rs:
crates/core/src/selection.rs:
crates/core/src/tuning.rs:
