/root/repo/target/release/deps/invariants-4ae14827fbde68a1.d: crates/integration/../../tests/invariants.rs

/root/repo/target/release/deps/invariants-4ae14827fbde68a1: crates/integration/../../tests/invariants.rs

crates/integration/../../tests/invariants.rs:
