/root/repo/target/release/deps/report-047b525b4911037c.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-047b525b4911037c: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
