/root/repo/target/release/deps/prima_layout-3aa6c95f7b716c3a.d: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

/root/repo/target/release/deps/prima_layout-3aa6c95f7b716c3a: crates/layout/src/lib.rs crates/layout/src/cell.rs crates/layout/src/extract.rs crates/layout/src/render.rs

crates/layout/src/lib.rs:
crates/layout/src/cell.rs:
crates/layout/src/extract.rs:
crates/layout/src/render.rs:
