/root/repo/target/release/deps/prima_place-d8248c8165fa8bb2.d: crates/place/src/lib.rs

/root/repo/target/release/deps/libprima_place-d8248c8165fa8bb2.rlib: crates/place/src/lib.rs

/root/repo/target/release/deps/libprima_place-d8248c8165fa8bb2.rmeta: crates/place/src/lib.rs

crates/place/src/lib.rs:
