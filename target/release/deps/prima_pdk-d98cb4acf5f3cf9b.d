/root/repo/target/release/deps/prima_pdk-d98cb4acf5f3cf9b.d: crates/pdk/src/lib.rs

/root/repo/target/release/deps/prima_pdk-d98cb4acf5f3cf9b: crates/pdk/src/lib.rs

crates/pdk/src/lib.rs:
