/root/repo/target/release/deps/prima_primitives-acfd79d3253531b0.d: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

/root/repo/target/release/deps/libprima_primitives-acfd79d3253531b0.rlib: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

/root/repo/target/release/deps/libprima_primitives-acfd79d3253531b0.rmeta: crates/primitives/src/lib.rs crates/primitives/src/bias.rs crates/primitives/src/circuit.rs crates/primitives/src/library.rs crates/primitives/src/metrics.rs crates/primitives/src/montecarlo.rs crates/primitives/src/testbench.rs

crates/primitives/src/lib.rs:
crates/primitives/src/bias.rs:
crates/primitives/src/circuit.rs:
crates/primitives/src/library.rs:
crates/primitives/src/metrics.rs:
crates/primitives/src/montecarlo.rs:
crates/primitives/src/testbench.rs:
