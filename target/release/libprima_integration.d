/root/repo/target/release/libprima_integration.rlib: /root/repo/crates/integration/src/lib.rs
