/root/repo/target/release/libprima_geom.rlib: /root/repo/crates/geom/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
