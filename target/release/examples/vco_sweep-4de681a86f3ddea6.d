/root/repo/target/release/examples/vco_sweep-4de681a86f3ddea6.d: crates/flow/../../examples/vco_sweep.rs

/root/repo/target/release/examples/vco_sweep-4de681a86f3ddea6: crates/flow/../../examples/vco_sweep.rs

crates/flow/../../examples/vco_sweep.rs:
