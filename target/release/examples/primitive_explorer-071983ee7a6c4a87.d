/root/repo/target/release/examples/primitive_explorer-071983ee7a6c4a87.d: crates/flow/../../examples/primitive_explorer.rs

/root/repo/target/release/examples/primitive_explorer-071983ee7a6c4a87: crates/flow/../../examples/primitive_explorer.rs

crates/flow/../../examples/primitive_explorer.rs:
