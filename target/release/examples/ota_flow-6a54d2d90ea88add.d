/root/repo/target/release/examples/ota_flow-6a54d2d90ea88add.d: crates/flow/../../examples/ota_flow.rs

/root/repo/target/release/examples/ota_flow-6a54d2d90ea88add: crates/flow/../../examples/ota_flow.rs

crates/flow/../../examples/ota_flow.rs:
