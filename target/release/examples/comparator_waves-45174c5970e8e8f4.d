/root/repo/target/release/examples/comparator_waves-45174c5970e8e8f4.d: crates/flow/../../examples/comparator_waves.rs

/root/repo/target/release/examples/comparator_waves-45174c5970e8e8f4: crates/flow/../../examples/comparator_waves.rs

crates/flow/../../examples/comparator_waves.rs:
