/root/repo/target/release/examples/quickstart-c44b9667ff2f0a49.d: crates/flow/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c44b9667ff2f0a49: crates/flow/../../examples/quickstart.rs

crates/flow/../../examples/quickstart.rs:
