//! Full hierarchical flow on the high-frequency 5T OTA: schematic
//! reference, conventional baseline, and the optimized-primitives flow —
//! the Table VI comparison.
//!
//! Run with `cargo run --release --example ota_flow`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_flow::circuits::FiveTOta;
use prima_flow::{conventional_flow, optimized_flow, Realization};
use prima_pdk::Technology;
use prima_primitives::Library;

fn main() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = FiveTOta::spec();

    println!("== schematic ==");
    let sch = FiveTOta::measure(&tech, &lib, &Realization::schematic()).expect("schematic sim");
    println!("{sch}");

    println!("\n== conventional flow (geometry only) ==");
    let conv = conventional_flow(&tech, &lib, &spec, 42).expect("conventional flow");
    let conv_m = FiveTOta::measure(&tech, &lib, &conv.realization).expect("conventional sim");
    println!("{conv_m}");
    println!(
        "  area {:.1} µm², wirelength {:.1} µm, runtime {:?}",
        conv.area_um2, conv.wirelength_um, conv.runtime
    );

    println!("\n== optimized flow (this work) ==");
    let biases = FiveTOta::biases(&tech, &lib).expect("bias extraction");
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 42).expect("optimized flow");
    let opt_m = FiveTOta::measure(&tech, &lib, &opt.realization).expect("optimized sim");
    println!("{opt_m}");
    println!(
        "  area {:.1} µm², wirelength {:.1} µm, runtime {:?}",
        opt.area_um2, opt.wirelength_um, opt.runtime
    );
    println!(
        "  simulations: selection {}, tuning {}, ports {}",
        opt.sims["selection"], opt.sims["tuning"], opt.sims["ports"]
    );
    for (net, wire) in &opt.realization.net_wires {
        println!(
            "  net {net}: R = {:.1} Ω, C = {:.2} fF",
            wire.r_ohm,
            wire.c_f * 1e15
        );
    }

    // The headline shape: the optimized flow tracks the schematic more
    // closely than the conventional flow on UGF and gain.
    let d = |a: f64, b: f64| (a - b).abs() / b.abs();
    println!("\n== deviation from schematic ==");
    println!(
        "gain: conventional {:.1}%, this work {:.1}%",
        100.0 * d(conv_m.gain_db, sch.gain_db),
        100.0 * d(opt_m.gain_db, sch.gain_db)
    );
    println!(
        "UGF : conventional {:.1}%, this work {:.1}%",
        100.0 * d(conv_m.ugf_ghz, sch.ugf_ghz),
        100.0 * d(opt_m.ugf_ghz, sch.ugf_ghz)
    );
}
