//! Regenerates the RO-VCO tuning curve (Table VII) for the schematic and
//! both automatic flows.
//!
//! Run with `cargo run --release --example vco_sweep` (this drives long
//! transient simulations; expect minutes).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_flow::circuits::RoVco;
use prima_flow::{conventional_flow, optimized_flow, Realization};
use prima_pdk::Technology;
use prima_primitives::Library;

fn main() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let vco = RoVco::default();
    let spec = vco.spec();

    println!("== schematic tuning curve ==");
    let sch = vco
        .measure(&tech, &lib, &Realization::schematic())
        .expect("schematic VCO");
    print_curve(&sch.curve);
    println!("{sch}");

    println!("\n== conventional flow ==");
    let conv = conventional_flow(&tech, &lib, &spec, 17).expect("conventional flow");
    let conv_m = vco
        .measure(&tech, &lib, &conv.realization)
        .expect("conventional VCO");
    print_curve(&conv_m.curve);
    println!("{conv_m}");

    println!("\n== optimized flow (this work) ==");
    let biases = vco.biases(&tech, &lib).expect("bias extraction");
    let opt = optimized_flow(&tech, &lib, &spec, &biases, 17).expect("optimized flow");
    let opt_m = vco
        .measure(&tech, &lib, &opt.realization)
        .expect("optimized VCO");
    print_curve(&opt_m.curve);
    println!("{opt_m}");

    println!("\nTable VII shape: schematic fmax >= this work fmax > conventional fmax");
    println!(
        "  fmax: schematic {:.2} GHz, this work {:.2} GHz, conventional {:.2} GHz",
        sch.f_max_ghz, opt_m.f_max_ghz, conv_m.f_max_ghz
    );
}

fn print_curve(curve: &[(f64, f64)]) {
    for (v, f) in curve {
        if *f > 0.0 {
            println!("  Vctrl = {v:.3} V -> {f:.2} GHz");
        } else {
            println!("  Vctrl = {v:.3} V -> no oscillation");
        }
    }
}
