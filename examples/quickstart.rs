//! Quickstart: optimize one differential-pair primitive end to end.
//!
//! Demonstrates the paper's Algorithm 1 on the Table III example — a DP
//! with 960 total fins — printing the per-bin selected layouts, their cost
//! breakdowns, and the effect of primitive tuning.
//!
//! Run with `cargo run --release --example quickstart`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_core::{enumerate_configs, Optimizer, Phase};
use prima_flow::circuits::CsAmp;
use prima_flow::{optimized_flow_with, FlowOptions, GdsPolicy};
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};

fn main() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let dp = lib.get("dp").expect("dp is a standard primitive");
    let bias = Bias::nominal(&tech, &dp.class);
    let opt = Optimizer::new(&tech);

    // The Fig. 5 option space: every nfin/nf/m factorization of 960 fins.
    let configs = enumerate_configs(960, &[8, 12, 16, 24], 8);
    println!(
        "differential pair, W = 46.08 µm as 960 fins: {} layout candidates",
        configs.len()
    );

    let picks = opt
        .select(dp, &bias, &configs, 3)
        .expect("selection succeeds");
    println!("\n== selected per aspect-ratio bin ==");
    for (i, pick) in picks.iter().enumerate() {
        let cfg = pick.layout.config;
        println!(
            "bin {}: nfin={:<2} nf={:<2} m={} {}  AR={:.2}  cost={:.2}",
            i + 1,
            cfg.nfin,
            cfg.nf,
            cfg.m,
            cfg.pattern,
            pick.layout.aspect_ratio(),
            pick.cost
        );
        for b in &pick.breakdown {
            println!(
                "      Δ{:<10} = {:>6.2}%  (α = {})",
                b.metric, b.deviation_pct, b.weight
            );
        }
    }

    println!("\n== primitive tuning (parallel wires at the tuning terminals) ==");
    for pick in &picks {
        let before = pick.cost;
        let tuned = opt
            .tune(dp, &bias, pick.layout.clone())
            .expect("tuning succeeds");
        println!(
            "AR {:.2}: cost {:.2} -> {:.2}  (source wires ×{}, drain wires ×{})",
            tuned.layout.aspect_ratio(),
            before,
            tuned.cost,
            tuned.layout.parallel_wires("s"),
            tuned.layout.parallel_wires("da"),
        );
    }

    println!(
        "\nsimulations: selection {}, tuning {} (all independent, parallelizable)",
        opt.counter().count(Phase::Selection),
        opt.counter().count(Phase::Tuning)
    );

    // Stream the smallest benchmark circuit out to industry-standard
    // binary GDS-II: the full optimized flow with `GdsPolicy::On` attaches
    // the byte stream to the outcome, ready to open in KLayout.
    println!("\n== stream-out: CS amp flow to binary GDS-II ==");
    let spec = CsAmp::spec();
    let biases = CsAmp::biases(&tech, &lib).expect("bias solve succeeds");
    let options = FlowOptions {
        gds: GdsPolicy::On,
        ..FlowOptions::default()
    };
    let out = optimized_flow_with(&tech, &lib, &spec, &biases, 7, options).expect("flow succeeds");
    let art = out.gds.expect("stream-out was enabled");
    std::fs::write("quickstart.gds", &art.bytes).expect("quickstart.gds is writable");
    println!(
        "wrote quickstart.gds: {} bytes, {} structures, top cell {:?} — open it in KLayout",
        art.bytes.len(),
        art.library.structures.len(),
        art.top
    );
}
