//! Explore the layout-option space of any library primitive: enumerate
//! configurations, rank them by cost, and show the LDE/parasitic reasons.
//!
//! Usage: `cargo run --release --example primitive_explorer [name] [fins]`
//! e.g. `cargo run --release --example primitive_explorer cm_1to8 288`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_core::{enumerate_configs, Optimizer, Phase};
use prima_layout::generate;
use prima_pdk::Technology;
use prima_primitives::{Bias, Library};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("cm");
    let fins: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(192);

    let tech = Technology::finfet7();
    let lib = Library::standard();
    let Some(def) = lib.get(name) else {
        eprintln!("unknown primitive {name}; available:");
        for d in lib.iter() {
            eprintln!("  {:<16} {}", d.name, d.description);
        }
        std::process::exit(1);
    };
    if def.spec.devices.is_empty() {
        eprintln!("{name} is a passive primitive; it has no FET layout space");
        std::process::exit(1);
    }

    let bias = Bias::nominal(&tech, &def.class);
    let opt = Optimizer::new(&tech);
    let configs = enumerate_configs(fins, &[2, 3, 4, 6, 8, 12, 16, 24, 32], 8);
    if configs.is_empty() {
        eprintln!("{fins} fins cannot be factored into the allowed nfin/nf/m space");
        std::process::exit(1);
    }
    println!(
        "{name} ({}) at {fins} fins: {} candidates",
        def.description,
        configs.len()
    );

    let sch = opt
        .schematic_reference(def, &bias, fins)
        .expect("schematic reference");
    println!("schematic metrics:");
    let mut names: Vec<&String> = sch.keys().collect();
    names.sort();
    for m in names {
        println!("  {m:<12} = {:.4e}", sch[m]);
    }

    let mut rows = Vec::new();
    for cfg in &configs {
        let layout = generate(&tech, &def.spec, cfg).expect("generation succeeds");
        let ar = layout.aspect_ratio();
        let area = layout.area_um2();
        let ev = opt
            .evaluate_layout(def, &bias, layout, &sch, Phase::Selection)
            .expect("evaluation succeeds");
        rows.push((*cfg, ar, area, ev.cost, ev.breakdown));
    }
    rows.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite costs"));

    println!("\nrank  nfin nf  m  pattern   AR    area(µm²)  cost   worst deviation");
    for (i, (cfg, ar, area, cost, bd)) in rows.iter().enumerate().take(12) {
        let worst = bd
            .iter()
            .max_by(|a, b| {
                (a.weight * a.deviation_pct)
                    .partial_cmp(&(b.weight * b.deviation_pct))
                    .expect("finite")
            })
            .expect("non-empty breakdown");
        println!(
            "{:>4}  {:<4} {:<3} {:<2} {:<8} {:>5.2}  {:>8.2}  {:>6.2}  Δ{} = {:.2}%",
            i + 1,
            cfg.nfin,
            cfg.nf,
            cfg.m,
            cfg.pattern.to_string(),
            ar,
            area,
            cost,
            worst.metric,
            worst.deviation_pct
        );
    }
    println!(
        "\n{} simulations ({} metrics × {} layouts + reference)",
        opt.counter().total(),
        def.metrics.len(),
        configs.len()
    );
}
