//! Runs the StrongARM comparator transient and exports the decision
//! waveforms as CSV, plus the input pair's cell geometry as SVG — the
//! artifacts a designer inspects after a flow run.
//!
//! Run with `cargo run --release --example comparator_waves`; files land in
//! the current directory.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use prima_flow::circuits::StrongArm;
use prima_flow::{build_circuit, optimized_flow};
use prima_layout::render;
use prima_pdk::Technology;
use prima_primitives::Library;
use prima_spice::analysis::tran::TranSolver;
use prima_spice::netlist::{Circuit, Waveform};
use prima_spice::report;

fn main() {
    let tech = Technology::finfet7();
    let lib = Library::standard();
    let spec = StrongArm::spec();
    let biases = StrongArm::biases(&tech, &lib).expect("bias extraction");
    let flow = optimized_flow(&tech, &lib, &spec, &biases, 42).expect("optimized flow");

    // Assemble and drive the comparator the same way the testbench does.
    let mut c = build_circuit(&tech, &lib, &spec.instances, &flow.realization).expect("assembly");
    let vdd = tech.vdd;
    let vdd_ext = c.find_node("vdd_ext").expect("rail");
    c.vsource("VDD", vdd_ext, Circuit::GROUND, vdd);
    let vcm = 0.6 * vdd;
    let vinp = c.find_node("vinp").expect("vinp");
    c.vsource("VINP", vinp, Circuit::GROUND, vcm + 0.025);
    let vinn = c.find_node("vinn").expect("vinn");
    c.vsource("VINN", vinn, Circuit::GROUND, vcm - 0.025);
    let vss = c.find_node("vssn").expect("vssn");
    c.vsource("VSSN", vss, Circuit::GROUND, 0.0);
    let clk = c.find_node("clk").expect("clk");
    c.vsource_wave(
        "VCLK",
        clk,
        Circuit::GROUND,
        Waveform::Pulse {
            v1: 0.0,
            v2: vdd,
            delay: 0.2e-9,
            rise: 8e-12,
            fall: 8e-12,
            width: 0.5e-9,
            period: 1e-9,
        },
        0.0,
    );

    let res = TranSolver::new(0.5e-12, 2.2e-9)
        .solve(&c)
        .expect("transient");
    let nodes = ["clk", "outp", "outn", "xa", "xb"].map(|n| c.find_node(n).expect("net exists"));
    let csv = report::tran_csv(&c, &res, &nodes);
    std::fs::write("strongarm_waves.csv", &csv).expect("write csv");
    println!(
        "wrote strongarm_waves.csv ({} samples × {} signals)",
        res.len(),
        nodes.len()
    );

    // Export the chosen input-pair cell as SVG.
    let dpin = &flow.realization.layouts["dpin"];
    let def = lib.get("dp_switched").expect("dp_switched");
    let geometry = render(&tech, &def.spec, &dpin.config).expect("render");
    std::fs::write("strongarm_dpin.svg", geometry.to_svg()).expect("write svg");
    println!(
        "wrote strongarm_dpin.svg (nfin={} nf={} m={} {}, {} rects)",
        dpin.config.nfin,
        dpin.config.nf,
        dpin.config.m,
        dpin.config.pattern,
        geometry.rects.len()
    );
}
